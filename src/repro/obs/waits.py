"""Wait-event profiler: where does the engine spend its blocked time?

The OCB/VOODB benchmark line showed that credible OODB performance work
needs engine-internal event accounting, and every mature database ships
a wait interface (Oracle wait events, Postgres ``pg_stat_activity``,
MySQL performance_schema).  This module is kimdb's: the lock manager,
buffer pool, pager and WAL report every blocking episode as a typed
:class:`WaitEvent` — kind, target, duration, owning transaction and
(for lock waits) the blocking transaction.

The profiler aggregates three ways:

* globally per ``(kind, target)`` — the rows behind the ``SysWaitEvent``
  system view ("which lock / page / log is hottest?");
* per transaction — so ``SysTransaction`` can show how much of a txn's
  life was spent waiting;
* into the shared :class:`~repro.obs.metrics.MetricsRegistry` as
  ``waits.<kind>.count`` counters and ``waits.<kind>.seconds``
  histograms, so waits ride along in every snapshot and bench artifact.

A bounded ring of the most recent events supports the monitor front
end.  All durations are measured with ``time.perf_counter`` (see the
clock convention in :mod:`repro.obs.export`).
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry, NULL_INSTRUMENT

#: The wait-event taxonomy: every kind the engine emits, mapped to its
#: emitting layer in DESIGN.md.  ``record()`` rejects kinds not listed
#: here, so this tuple (and the DESIGN.md table) stays authoritative;
#: adding a kind is one tuple entry — instruments are created lazily.
WAIT_KINDS = (
    "Lock",        # txn/locks.py — blocked lock acquisition
    "BufferRead",  # storage/buffer.py — pool miss: parse a page from the pager
    "BufferWrite", # storage/buffer.py — dirty eviction / explicit flush
    "PageRead",    # storage/pager.py — raw file read (FilePager only)
    "PageWrite",   # storage/pager.py — raw file write (FilePager only)
    "WALFlush",    # txn/wal.py — commit-time log flush
    "WALSync",     # txn/wal.py — commit-time fsync
)


def _metric_name(kind: str) -> str:
    """``BufferRead`` -> ``buffer_read`` for registry metric names."""
    out = []
    for i, ch in enumerate(kind):
        if ch.isupper() and i > 0:
            out.append("_")
        out.append(ch.lower())
    return "".join(out)


class WaitEvent:
    """One blocking episode, as reported by an engine layer."""

    __slots__ = ("kind", "target", "seconds", "txn_id", "blocker", "trace")

    def __init__(
        self,
        kind: str,
        target: Optional[str],
        seconds: float,
        txn_id: Optional[int] = None,
        blocker: Optional[int] = None,
        trace: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.target = target
        self.seconds = seconds
        self.txn_id = txn_id
        self.blocker = blocker
        self.trace = trace

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "target": self.target,
            "seconds": self.seconds,
            "txn": self.txn_id,
            "blocker": self.blocker,
            "trace": self.trace,
        }

    def __repr__(self) -> str:
        who = " txn=%d" % self.txn_id if self.txn_id is not None else ""
        by = " blocker=%d" % self.blocker if self.blocker is not None else ""
        return "<WaitEvent %s %s %.6fs%s%s>" % (
            self.kind,
            self.target,
            self.seconds,
            who,
            by,
        )


class WaitProfiler:
    """Accumulates :class:`WaitEvent` reports from the engine layers.

    Parameters
    ----------
    registry:
        Optional shared :class:`MetricsRegistry`; when given, every kind
        gets a ``waits.<kind>.count`` counter and ``waits.<kind>.seconds``
        histogram there.
    recent_capacity:
        Ring-buffer size for raw recent events (monitor feed).
    txn_capacity:
        How many transactions' wait totals to retain; oldest-seen
        transactions are evicted first so long-lived databases do not
        leak per-txn state.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        recent_capacity: int = 256,
        txn_capacity: int = 512,
    ) -> None:
        self.enabled = True
        self.registry = registry
        self.txn_capacity = txn_capacity
        #: Provider for "whose wait is this?" when the reporting layer
        #: has no transaction in hand (buffer/pager/WAL); the database
        #: points this at its transaction manager's per-thread current.
        self.current_txn: Callable[[], Optional[int]] = lambda: None
        #: Provider for the trace id active on the reporting thread; the
        #: database points this at its tracer's ``current_trace``.
        self.current_trace: Callable[[], Optional[str]] = lambda: None
        self._waits_mutex = threading.Lock()
        #: (kind, target) -> [count, total_seconds, max_seconds,
        #:                    last_txn, last_blocker, last_trace]
        self._aggregate: Dict[Tuple[str, Optional[str]], List[Any]] = {}
        #: txn_id -> kind -> [count, total_seconds]  (insertion-ordered
        #: for eviction).
        self._by_txn: Dict[int, Dict[str, List[float]]] = {}
        self._recent: "deque[WaitEvent]" = deque(maxlen=recent_capacity)
        self._instruments: Dict[str, Tuple[Any, Any]] = {}
        #: Per-thread stack of active capture dicts (kind -> seconds);
        #: waits are recorded on the blocking thread, so thread-local
        #: capture attributes them to the exact query that blocked.
        self._local = threading.local()

    # -- recording -----------------------------------------------------------

    def _kind_instruments(self, kind: str) -> Tuple[Any, Any]:
        pair = self._instruments.get(kind)
        if pair is None:
            if self.registry is not None:
                base = "waits.%s" % _metric_name(kind)
                pair = (
                    self.registry.counter(base + ".count"),
                    self.registry.histogram(base + ".seconds"),
                )
            else:
                pair = (NULL_INSTRUMENT, NULL_INSTRUMENT)
            self._instruments[kind] = pair
        return pair

    def record(
        self,
        kind: str,
        seconds: float,
        target: Optional[str] = None,
        txn_id: Optional[int] = None,
        blocker: Optional[int] = None,
    ) -> None:
        """Report one blocking episode of ``seconds`` (perf_counter delta)."""
        if kind not in WAIT_KINDS:
            raise ValueError(
                "unknown wait kind %r (known: %s)" % (kind, ", ".join(WAIT_KINDS))
            )
        if not self.enabled:
            return
        if txn_id is None:
            txn_id = self.current_txn()
        trace = self.current_trace()
        event = WaitEvent(kind, target, seconds, txn_id, blocker, trace)
        counter, histogram = self._kind_instruments(kind)
        captures = getattr(self._local, "captures", None)
        if captures:
            for capture in captures:
                capture[kind] = capture.get(kind, 0.0) + seconds
        with self._waits_mutex:
            row = self._aggregate.get((kind, target))
            if row is None:
                self._aggregate[(kind, target)] = [
                    1, seconds, seconds, txn_id, blocker, trace,
                ]
            else:
                row[0] += 1
                row[1] += seconds
                if seconds > row[2]:
                    row[2] = seconds
                if txn_id is not None:
                    row[3] = txn_id
                if blocker is not None:
                    row[4] = blocker
                if trace is not None:
                    row[5] = trace
            if txn_id is not None:
                per_txn = self._by_txn.get(txn_id)
                if per_txn is None:
                    while len(self._by_txn) >= self.txn_capacity:
                        self._by_txn.pop(next(iter(self._by_txn)))
                    per_txn = self._by_txn[txn_id] = {}
                totals = per_txn.setdefault(kind, [0, 0.0])
                totals[0] += 1
                totals[1] += seconds
            self._recent.append(event)
        counter.inc()
        histogram.observe(seconds)

    @contextmanager
    def capture(self) -> Iterator[Dict[str, float]]:
        """Collect this thread's waits into a ``kind -> seconds`` dict.

        The query-statistics layer wraps each query execution in a
        capture to attribute blocked time to the query's fingerprint.
        Captures nest (an outer capture still sees waits recorded while
        an inner one is active) and cost nothing off-thread: only waits
        recorded *on the capturing thread* land in the dict, which is
        exactly the per-query attribution semantics we want.
        """
        captures = getattr(self._local, "captures", None)
        if captures is None:
            captures = []
            self._local.captures = captures
        bucket: Dict[str, float] = {}
        captures.append(bucket)
        try:
            yield bucket
        finally:
            captures.remove(bucket)

    # -- reading -------------------------------------------------------------

    def rows(self) -> List[Dict[str, Any]]:
        """Aggregate rows, one per (kind, target) — the ``SysWaitEvent``
        extent.  Sorted by total wait, hottest first."""
        with self._waits_mutex:
            items = [
                (kind, target, list(values))
                for (kind, target), values in self._aggregate.items()
            ]
        out = []
        for kind, target, (count, total, peak, last_txn, last_blocker, last_trace) in items:
            out.append(
                {
                    "kind": kind,
                    "target": target,
                    "count": count,
                    "total_wait": total,
                    "max_wait": peak,
                    "avg_wait": total / count if count else 0.0,
                    "last_txn": last_txn,
                    "last_blocker": last_blocker,
                    "last_trace": last_trace,
                }
            )
        out.sort(key=lambda row: row["total_wait"], reverse=True)
        return out

    def recent(self, limit: Optional[int] = None) -> List[WaitEvent]:
        """Most recent raw events, newest last."""
        with self._waits_mutex:
            events = list(self._recent)
        return events if limit is None else events[-limit:]

    def txn_waits(self, txn_id: int) -> Dict[str, Any]:
        """One transaction's accumulated waits: total and per-kind."""
        with self._waits_mutex:
            per_txn = {
                kind: list(totals)
                for kind, totals in self._by_txn.get(txn_id, {}).items()
            }
        count = sum(int(t[0]) for t in per_txn.values())
        seconds = sum(t[1] for t in per_txn.values())
        return {
            "count": count,
            "seconds": seconds,
            "by_kind": {
                kind: {"count": int(t[0]), "seconds": t[1]}
                for kind, t in sorted(per_txn.items())
            },
        }

    def total_wait_seconds(self) -> float:
        with self._waits_mutex:
            return sum(values[1] for values in self._aggregate.values())

    def reset(self) -> None:
        with self._waits_mutex:
            self._aggregate.clear()
            self._by_txn.clear()
            self._recent.clear()

    def __len__(self) -> int:
        with self._waits_mutex:
            return len(self._aggregate)

    def __repr__(self) -> str:
        return "<WaitProfiler %d targets, %.6fs total%s>" % (
            len(self),
            self.total_wait_seconds(),
            "" if self.enabled else " (disabled)",
        )
