"""repro.obs — the unified observability subsystem.

One registry of metrics per database (counters, gauges, fixed-bucket
histograms), a span tracer with a bounded ring buffer and slow-op log,
a wait-event profiler (lock waits, buffer misses, page I/O, WAL
flushes, each tagged with the waiting transaction), EXPLAIN ANALYZE
plan trees read off live operator counters, and JSON/Prometheus
exporters.  Every engine-internal count — buffer hits, lock waits, WAL
flushes, index probes, swizzle faults, query phases — flows through
here; the legacy per-component ``*Stats`` classes remain as thin views
over registry instruments.

The system statistics views (:mod:`repro.obs.sysviews`) are **not**
re-exported here: that module imports the multidb and query layers,
which import this package back — the database imports it lazily.
"""

from .explain import ExplainResult, PlanNode, operator_tree
from .export import (
    export_json,
    observability_payload,
    render_prometheus,
    write_bench_artifact,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
)
from .tracing import SlowOp, Span, Tracer
from .waits import WAIT_KINDS, WaitEvent, WaitProfiler

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "ExplainResult",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "PlanNode",
    "SlowOp",
    "Span",
    "Tracer",
    "WAIT_KINDS",
    "WaitEvent",
    "WaitProfiler",
    "export_json",
    "observability_payload",
    "operator_tree",
    "render_prometheus",
    "write_bench_artifact",
]
