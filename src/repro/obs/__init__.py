"""repro.obs — the unified observability subsystem.

One registry of metrics per database (counters, gauges, fixed-bucket
histograms), a span tracer with a bounded ring buffer and slow-op log,
EXPLAIN ANALYZE plan trees read off live operator counters, and a JSON
exporter for benchmark
artifacts.  Every engine-internal count — buffer hits, lock waits, WAL
flushes, index probes, swizzle faults, query phases — flows through
here; the legacy per-component ``*Stats`` classes remain as thin views
over registry instruments.
"""

from .explain import ExplainResult, PlanNode, operator_tree
from .export import export_json, observability_payload, write_bench_artifact
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
)
from .tracing import SlowOp, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "ExplainResult",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "PlanNode",
    "SlowOp",
    "Span",
    "Tracer",
    "export_json",
    "observability_payload",
    "operator_tree",
    "write_bench_artifact",
]
