"""System statistics views: the database's own state as virtual extents.

The self-observing database: every internal statistic — wait events,
locks, transactions, metric counters, slow operations, the last query's
operator pipeline — is exposed as a queryable *system view* and flows
through the normal OQL parse -> analyze -> plan -> pipeline path.  A
monitoring question is just a query::

    db.select("SysWaitEvent where kind = 'Lock' order by total_wait desc limit 10")

System views are virtual classes served by a private
:class:`~repro.multidb.federation.Federation` (one adapter, source
``"system"``), so the physical pipeline is the same Volcano chain every
federated query runs — VirtualScanOp under filter/sort/limit/project —
and EXPLAIN shows a ``system-scan`` access node.  Rows are generated at
``open()`` time: each scan is a fresh snapshot, never a cache.

This module is imported lazily by :class:`~repro.database.Database` (not
from ``repro.obs.__init__``): it pulls in the multidb and query layers,
which themselves import ``repro.obs.metrics``, and an eager import from
the package initializer would cycle through ``storage.buffer``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Tuple

from ..analysis.diagnostics import DiagnosticReport
from ..multidb.federation import Adapter, Federation, FederationKernel, VirtualClass
from ..query.ast import (
    AdtPredicate,
    And,
    Comparison,
    Expr,
    MethodCall,
    Not,
    Or,
    Query,
)
from .metrics import Counter, Gauge, Histogram

Row = Dict[str, Any]

#: view name -> (attributes, one-line description).  Row producers are
#: the ``_rows_<name>`` methods on :class:`SystemViewsAdapter`.
SYSTEM_VIEWS: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "SysStat": (
        ("name", "kind", "value", "total", "mean"),
        "every instrument in the metrics registry",
    ),
    "SysWaitEvent": (
        (
            "kind",
            "target",
            "count",
            "total_wait",
            "max_wait",
            "avg_wait",
            "last_txn",
            "last_blocker",
            "last_trace",
        ),
        "aggregated wait events per (kind, target)",
    ),
    "SysLock": (
        ("resource", "txn", "mode", "granted"),
        "lock table snapshot: granted holds and blocked waiters",
    ),
    "SysTransaction": (
        (
            "txn",
            "status",
            "age",
            "operations",
            "locks_held",
            "wait_count",
            "wait_seconds",
            "waiting_for",
        ),
        "active transactions with age, lock and wait totals",
    ),
    "SysSnapshot": (
        ("snapshot", "ts", "txn", "age", "reads", "entries"),
        "live MVCC read snapshots and the version-store entry count",
    ),
    "SysSlowOp": (
        ("name", "elapsed", "threshold", "target", "trace"),
        "the tracer's slow-operation log",
    ),
    "SysQueryStat": (
        (
            "fingerprint",
            "target",
            "source",
            "calls",
            "rows_examined",
            "rows_matched",
            "index_probes",
            "plan_cache_hits",
            "snapshot_downgrades",
            "total_seconds",
            "mean_seconds",
            "p50",
            "p95",
            "p99",
            "lock_wait",
            "io_wait",
            "wal_wait",
        ),
        "accumulated per-query-fingerprint execution statistics",
    ),
    "SysClassStat": (
        ("class_name", "rows", "avg_bytes", "total_bytes", "stale"),
        "ANALYZE row counts and object sizing per class extent",
    ),
    "SysIndexStat": (
        (
            "index",
            "kind",
            "target",
            "path",
            "entries",
            "distinct_keys",
            "buckets",
            "low",
            "high",
            "histogram",
            "stale",
        ),
        "ANALYZE index cardinalities and equi-depth value histograms",
    ),
    "SysSession": (
        (
            "session",
            "client",
            "state",
            "txn",
            "age",
            "idle",
            "requests",
            "rows_streamed",
            "cursors",
        ),
        "connected server sessions (empty unless repro.server is attached)",
    ),
    "SysOperator": (
        ("position", "op", "detail", "rows_out", "elapsed"),
        "operator pipeline of the last user query",
    ),
    "SysPlanCache": (
        (
            "fingerprint",
            "target",
            "source",
            "access",
            "cost_mode",
            "hits",
            "schema_epoch",
            "index_epoch",
            "rules",
            "age_seconds",
        ),
        "cached query plans keyed on normalized-AST fingerprints",
    ),
}


class SystemViewsAdapter(Adapter):
    """Federation adapter generating system rows from live engine state."""

    def __init__(self, db) -> None:
        self.db = db

    def virtual_classes(self) -> List[VirtualClass]:
        return [
            VirtualClass(name, list(attrs))
            for name, (attrs, _desc) in sorted(SYSTEM_VIEWS.items())
        ]

    def scan(self, class_name: str) -> Iterator[Row]:
        producer: Callable[[], Iterator[Row]] = getattr(
            self, "_rows_%s" % class_name.lower()
        )
        return producer()

    # -- row producers (one fresh snapshot per scan) -----------------------

    def _rows_sysstat(self) -> Iterator[Row]:
        registry = self.db.metrics
        for name in registry.names():
            try:
                metric = registry.get(name)
            except Exception:
                metric = None  # derived: computed value only
            if isinstance(metric, Histogram):
                count = metric.count
                yield {
                    "name": name,
                    "kind": "histogram",
                    "value": count,
                    "total": metric.total,
                    "mean": (metric.total / count) if count else None,
                }
            elif isinstance(metric, Counter):
                yield {"name": name, "kind": "counter", "value": metric.value,
                       "total": None, "mean": None}
            elif isinstance(metric, Gauge):
                yield {"name": name, "kind": "gauge", "value": metric.value,
                       "total": None, "mean": None}
            else:
                yield {"name": name, "kind": "derived",
                       "value": registry.value(name), "total": None, "mean": None}

    def _rows_syswaitevent(self) -> Iterator[Row]:
        return iter(self.db.waits.rows())

    def _rows_syslock(self) -> Iterator[Row]:
        return iter(self.db.locks.held_snapshot())

    def _rows_systransaction(self) -> Iterator[Row]:
        blocked = {
            edge["waiter"]: edge["blocker"]
            for edge in reversed(self.db.locks.waiting_edges())
        }
        for txn in self.db.txns.active_snapshot():
            waits = self.db.waits.txn_waits(txn.txn_id)
            yield {
                "txn": txn.txn_id,
                "status": txn.status,
                "age": txn.age_seconds,
                "operations": txn.operations,
                "locks_held": len(self.db.locks.locks_held(txn.txn_id)),
                "wait_count": waits["count"],
                "wait_seconds": waits["seconds"],
                "waiting_for": blocked.get(txn.txn_id),
            }

    def _rows_syssnapshot(self) -> Iterator[Row]:
        store = getattr(self.db, "version_store", None)
        if store is None:
            return
        for row in store.snapshot_rows():
            yield row

    def _rows_syssession(self) -> Iterator[Row]:
        # ``db.sessions`` is the server's session registry (a public
        # attachment slot like ``db.authz``); an embedded database has
        # none and the view is simply empty.
        registry = self.db.sessions
        if registry is None:
            return iter(())
        return iter(registry.rows())

    def _rows_sysslowop(self) -> Iterator[Row]:
        for op in self.db.tracer.slow_ops():
            yield {
                "name": op.name,
                "elapsed": op.elapsed,
                "threshold": op.threshold,
                "target": op.tags.get("target"),
                "trace": op.tags.get("trace"),
            }

    def _rows_sysquerystat(self) -> Iterator[Row]:
        stats = getattr(self.db, "query_stats", None)
        if stats is None:
            return iter(())
        return iter(stats.rows())

    def _catalog_staleness(self, catalog) -> str:
        """The catalog's live staleness, surfaced on every stats row."""
        return (
            catalog.stale_reason(self.db.schema.version, self.db.indexes.epoch)
            or ""
        )

    def _rows_sysclassstat(self) -> Iterator[Row]:
        catalog = getattr(self.db, "statistics", None)
        if catalog is None:
            return iter(())
        stale = self._catalog_staleness(catalog)
        return iter(
            dict(row, stale=stale) for row in catalog.class_rows_table()
        )

    def _rows_sysindexstat(self) -> Iterator[Row]:
        catalog = getattr(self.db, "statistics", None)
        if catalog is None:
            return iter(())
        stale = self._catalog_staleness(catalog)
        return iter(
            dict(row, stale=stale) for row in catalog.index_rows_table()
        )

    def _rows_sysplancache(self) -> Iterator[Row]:
        cache = getattr(self.db, "plan_cache", None)
        if cache is None:
            return iter(())
        return iter(cache.rows())

    def _rows_sysoperator(self) -> Iterator[Row]:
        for position, stats in enumerate(self.db.last_operator_stats or []):
            yield {
                "position": position,
                "op": stats.get("op"),
                "detail": stats.get("detail"),
                "rows_out": stats.get("rows_out"),
                "elapsed": stats.get("elapsed"),
            }


class SystemCatalog:
    """Resolver + checker + executor hookup for system views.

    Owned by the database; the planner consults :meth:`is_system` (duck
    typed, no import) and emits a
    :class:`~repro.query.planner.SystemScan`, which ``compile_plan``
    lowers to a VirtualScanOp over :meth:`scan`.
    """

    def __init__(self, db) -> None:
        self.db = db
        self.federation = Federation()
        self.federation.register("system", SystemViewsAdapter(db))

    # -- catalog -----------------------------------------------------------

    def is_system(self, name: str) -> bool:
        return name in SYSTEM_VIEWS

    def view_names(self) -> List[str]:
        return sorted(SYSTEM_VIEWS)

    def attributes(self, view: str) -> Tuple[str, ...]:
        return SYSTEM_VIEWS[view][0]

    def describe(self, view: str) -> str:
        return SYSTEM_VIEWS[view][1]

    def estimate_rows(self, view: str) -> float:
        # Snapshots are tiny; a flat guess keeps plan() side-effect free
        # (counting would run the producer, i.e. observe the observer).
        return 16.0

    # -- execution hookup --------------------------------------------------

    def kernel(self, view: str) -> FederationKernel:
        return FederationKernel(self.federation, view)

    def scan(self, view: str) -> Iterator[Row]:
        return self.federation.scan(view)

    # -- semantic checking -------------------------------------------------

    def check(self, query: Query, source: "str | None" = None) -> DiagnosticReport:
        """Lightweight semantic gate replacing the schema analyzer.

        System views are flat row sources: no hierarchy, no references,
        no methods, no ADTs, no aggregates — everything else (filter,
        order, limit, projection) behaves exactly as on classes.
        """
        report = DiagnosticReport(source)
        attrs = set(self.attributes(query.target_class))
        if query.aggregates or query.group_by is not None:
            report.error(
                "ANA602",
                "aggregates and GROUP BY are not supported over system "
                "views; query the raw rows and aggregate client-side",
            )
        for path in query.projections or []:
            self._check_path(report, path, attrs)
        if query.order_by is not None:
            self._check_path(report, query.order_by, attrs)
        if query.where is not None:
            self._check_expr(report, query.where, attrs)
        return report

    def _check_path(self, report: DiagnosticReport, path, attrs) -> None:
        span = getattr(path, "span", None)
        if len(path.steps) != 1:
            report.error(
                "ANA603",
                "system views have no references: path %s cannot navigate"
                % path.dotted(),
                span,
            )
            return
        if path.steps[0] not in attrs:
            report.error(
                "ANA601",
                "unknown system view attribute %r (has: %s)"
                % (path.steps[0], ", ".join(sorted(attrs))),
                span,
            )

    def _check_expr(self, report: DiagnosticReport, expr: Expr, attrs) -> None:
        if isinstance(expr, Comparison):
            self._check_path(report, expr.path, attrs)
        elif isinstance(expr, (MethodCall, AdtPredicate)):
            report.error(
                "ANA603",
                "system views support plain comparisons only, not %s"
                % type(expr).__name__,
                getattr(expr, "span", None),
            )
        elif isinstance(expr, (And, Or)):
            for operand in expr.operands:
                self._check_expr(report, operand, attrs)
        elif isinstance(expr, Not):
            self._check_expr(report, expr.operand, attrs)

    def __repr__(self) -> str:
        return "<SystemCatalog %d views>" % len(SYSTEM_VIEWS)
