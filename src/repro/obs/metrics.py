"""Metric instruments and the registry that owns them.

The paper's closing section makes performance benchmarking a research
direction in its own right; the OCB/VOODB line of work showed that
credible OODB numbers require counting buffer, clustering, locking and
traversal events *inside* the engine.  This module is the substrate:
plain-int counters, gauges and fixed-bucket histograms owned by one
:class:`MetricsRegistry` per database, cheap enough to leave on in
production (attribute increments, no locks on the hot path) and
snapshot/reset-able so experiments get deterministic before/after
numbers.
"""

from __future__ import annotations

import bisect
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import KimDBError

#: Default histogram bucket upper bounds, tuned for seconds-valued
#: observations (100 microseconds up to ~10 s).  Callers measuring other
#: units pass their own bounds.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Counter:
    """A monotonically increasing count (resettable for experiments)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return "<Counter %s=%d>" % (self.name, self.value)


class Gauge:
    """A value that goes up and down (pool occupancy, active txns)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: Any) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def dec(self, amount: int = 1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return "<Gauge %s=%r>" % (self.name, self.value)


class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max.

    Buckets are cumulative-upper-bound style (Prometheus-like): bucket
    ``i`` counts observations ``<= bounds[i]``; one overflow bucket
    catches the rest.  ``observe`` is a bisect plus two adds — cheap
    enough for per-operation latencies.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise KimDBError("histogram %r needs at least one bucket bound" % name)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def time(self) -> "_HistogramTimer":
        """``with histogram.time(): ...`` records the block's duration."""
        return _HistogramTimer(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile: the upper bound of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise KimDBError("quantile %r out of [0, 1]" % q)
        if self.count == 0:
            return None
        target = q * self.count
        running = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            running += bucket_count
            if running >= target:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "buckets": {
                "le_%g" % bound: self.bucket_counts[i]
                for i, bound in enumerate(self.bounds)
            },
            "overflow": self.bucket_counts[-1],
        }

    def __repr__(self) -> str:
        return "<Histogram %s n=%d mean=%.6f>" % (self.name, self.count, self.mean)


class _HistogramTimer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class _NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry.

    Implements the whole Counter/Gauge/Histogram surface so callers
    never branch on "metrics enabled?" themselves — the off path is a
    single no-op method call.
    """

    __slots__ = ()
    name = "<null>"
    count = 0
    total = 0.0
    mean = 0.0
    min = None
    max = None

    @property
    def value(self) -> int:
        return 0

    @value.setter
    def value(self, _value: Any) -> None:
        pass

    def inc(self, amount: int = 1) -> None:
        pass

    def dec(self, amount: int = 1) -> None:
        pass

    def set(self, value: Any) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NullInstrument":
        return self

    def reset(self) -> None:
        pass

    def quantile(self, q: float) -> None:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """One namespace of metrics, usually owned by one :class:`Database`.

    Components get-or-create instruments by dotted name
    (``registry.counter("buffer.hits")``) and hold the returned object —
    the hot path is then one attribute increment, no dict lookup.
    ``snapshot()`` flattens everything to plain data for tests, the JSON
    exporter and the REPL; ``reset()`` zeroes every instrument between
    experiment phases.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, Any] = {}
        self._derived: Dict[str, Callable[[], Any]] = {}

    # -- instrument creation -------------------------------------------------

    def _get_or_create(self, name: str, kind: type, *args: Any) -> Any:
        if not self.enabled:
            return NULL_INSTRUMENT
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise KimDBError(
                    "metric %r already registered as %s"
                    % (name, type(existing).__name__)
                )
            return existing
        instrument = kind(name, *args)
        self._metrics[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, bounds)

    def derived(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a computed metric, evaluated only at snapshot time.

        Used for ratios (buffer hit rate) that would waste hot-path
        cycles if maintained eagerly.
        """
        if self.enabled:
            self._derived[name] = fn

    # -- reading -------------------------------------------------------------

    def get(self, name: str) -> Any:
        try:
            return self._metrics[name]
        except KeyError:
            raise KimDBError("no metric named %r" % (name,)) from None

    def names(self) -> List[str]:
        return sorted(set(self._metrics) | set(self._derived))

    def snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """Flat ``{name: value}`` view; histograms expand to dicts."""
        out: Dict[str, Any] = {}
        for name, metric in self._metrics.items():
            if prefix and not name.startswith(prefix):
                continue
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        for name, fn in self._derived.items():
            if prefix and not name.startswith(prefix):
                continue
            out[name] = fn()
        return dict(sorted(out.items()))

    def value(self, name: str, default: Any = 0) -> Any:
        """The current value of one metric (0 for absent/disabled)."""
        metric = self._metrics.get(name)
        if metric is None:
            fn = self._derived.get(name)
            return fn() if fn is not None else default
        if isinstance(metric, Histogram):
            return metric.count
        return metric.value

    def reset(self, prefix: str = "") -> None:
        for name, metric in self._metrics.items():
            if not prefix or name.startswith(prefix):
                metric.reset()

    def __contains__(self, name: str) -> bool:
        return name in self._metrics or name in self._derived

    def __len__(self) -> int:
        return len(self._metrics) + len(self._derived)

    def __repr__(self) -> str:
        return "<MetricsRegistry %d metrics%s>" % (
            len(self),
            "" if self.enabled else " (disabled)",
        )
