"""Span-based tracing with a bounded ring buffer and a slow-operation log.

``tracer.span("query.execute", target="Vehicle")`` times a block and
records it as a node in a parent/child tree; nesting follows the runtime
call stack (per thread).  Finished spans land in a fixed-size ring
buffer so a long-lived database never grows without bound, and any span
slower than the configured threshold is copied to the slow-op log — the
first place to look when a workload degrades.

A thread can also carry a *trace context*: ``with tracer.trace(id):``
stamps every span and note recorded inside the block with a
``trace=<id>`` tag.  The server session adopts the trace id the client
stamped into the request frame, so a slow query shows up in the
server-side ``SysSlowOp`` view under the id the client logged — the
end-to-end propagation contract is documented in DESIGN.md.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from collections import deque


class Span:
    """One timed operation; ``elapsed`` is None while still running."""

    #: Children kept per span; beyond this they are counted, not stored,
    #: so a pathological loop inside one span cannot exhaust memory.
    MAX_CHILDREN = 128

    __slots__ = (
        "name",
        "tags",
        "start",
        "elapsed",
        "parent",
        "children",
        "dropped_children",
        "depth",
        "error",
    )

    def __init__(
        self,
        name: str,
        tags: Dict[str, Any],
        start: float,
        parent: Optional["Span"] = None,
    ) -> None:
        self.name = name
        self.tags = tags
        self.start = start
        self.elapsed: Optional[float] = None
        self.parent = parent
        self.children: List["Span"] = []
        self.dropped_children = 0
        self.depth = 0 if parent is None else parent.depth + 1
        self.error: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.elapsed is not None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "elapsed": self.elapsed,
            "depth": self.depth,
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        if self.dropped_children:
            out["dropped_children"] = self.dropped_children
        return out

    def render(self) -> str:
        """Indented one-span-per-line view of this span's subtree."""
        lines: List[str] = []
        self._render_into(lines, self.depth)
        return "\n".join(lines)

    def _render_into(self, lines: List[str], base_depth: int) -> None:
        elapsed = "%.3fms" % (self.elapsed * 1e3) if self.finished else "..."
        tags = (
            " {%s}" % ", ".join("%s=%r" % kv for kv in sorted(self.tags.items()))
            if self.tags
            else ""
        )
        error = " ERROR(%s)" % self.error if self.error else ""
        lines.append(
            "%s%s %s%s%s" % ("  " * (self.depth - base_depth), self.name, elapsed, tags, error)
        )
        for child in self.children:
            child._render_into(lines, base_depth)
        if self.dropped_children:
            lines.append(
                "%s... %d more children dropped"
                % ("  " * (self.depth - base_depth + 1), self.dropped_children)
            )

    def __repr__(self) -> str:
        status = "%.6fs" % self.elapsed if self.finished else "running"
        return "<Span %s %s>" % (self.name, status)


class SlowOp:
    """One slow-log entry: a finished span that crossed the threshold."""

    __slots__ = ("name", "elapsed", "threshold", "tags")

    def __init__(self, name: str, elapsed: float, threshold: float, tags: Dict[str, Any]) -> None:
        self.name = name
        self.elapsed = elapsed
        self.threshold = threshold
        self.tags = tags

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "elapsed": self.elapsed,
            "threshold": self.threshold,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:
        return "<SlowOp %s %.3fms (threshold %.3fms)>" % (
            self.name,
            self.elapsed * 1e3,
            self.threshold * 1e3,
        )


class Tracer:
    """Per-database tracer.

    Parameters
    ----------
    capacity:
        Ring-buffer size for finished spans (oldest evicted first).
    slow_threshold:
        Seconds; a finished span at or above this is copied to the
        slow-op log.  None disables the slow log.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when given,
        the tracer maintains ``trace.spans`` and ``trace.slow_ops``
        counters there.
    """

    def __init__(
        self,
        capacity: int = 512,
        slow_threshold: Optional[float] = None,
        slow_capacity: int = 128,
        registry=None,
        clock=time.perf_counter,
    ) -> None:
        self.capacity = capacity
        self.slow_threshold = slow_threshold
        self.enabled = True
        self._clock = clock
        self._buffer: "deque[Span]" = deque(maxlen=capacity)
        self._slow: "deque[SlowOp]" = deque(maxlen=slow_capacity)
        self._local = threading.local()
        if registry is not None:
            self._span_counter = registry.counter("trace.spans")
            self._slow_counter = registry.counter("trace.slow_ops")
        else:
            from .metrics import NULL_INSTRUMENT

            self._span_counter = NULL_INSTRUMENT
            self._slow_counter = NULL_INSTRUMENT

    # -- recording -----------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    @property
    def current_trace(self) -> Optional[str]:
        """The trace id active on this thread, if any."""
        return getattr(self._local, "trace", None)

    @contextmanager
    def trace(self, trace_id: Optional[str]) -> Iterator[None]:
        """Activate ``trace_id`` as this thread's trace context.

        Every span and note recorded inside the block carries a
        ``trace=<trace_id>`` tag (unless the caller set one explicitly).
        Contexts nest: the innermost id wins and the previous one is
        restored on exit.  ``None`` is a no-op context, so call sites
        can pass an optional id through unconditionally.
        """
        if trace_id is None:
            yield
            return
        previous = getattr(self._local, "trace", None)
        self._local.trace = trace_id
        try:
            yield
        finally:
            self._local.trace = previous

    def _stamp_trace(self, tags: Dict[str, Any]) -> None:
        trace_id = getattr(self._local, "trace", None)
        if trace_id is not None and "trace" not in tags:
            tags["trace"] = trace_id

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[Optional[Span]]:
        if not self.enabled:
            yield None
            return
        self._stamp_trace(tags)
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(name, tags, self._clock(), parent)
        if parent is not None:
            if len(parent.children) < Span.MAX_CHILDREN:
                parent.children.append(span)
            else:
                parent.dropped_children += 1
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.error = type(exc).__name__
            raise
        finally:
            span.elapsed = self._clock() - span.start
            stack.pop()
            self._buffer.append(span)
            self._span_counter.inc()
            if (
                self.slow_threshold is not None
                and span.elapsed >= self.slow_threshold
            ):
                self._slow.append(
                    SlowOp(span.name, span.elapsed, self.slow_threshold, span.tags)
                )
                self._slow_counter.inc()

    def note(self, name: str, **tags: Any) -> None:
        """Record a noteworthy non-timed event in the slow-op log.

        Unlike :meth:`span`, a note always lands in the slow log
        regardless of threshold — it marks events whose *occurrence* is
        the signal (e.g. a torn WAL tail truncated during replay), and
        makes them visible through ``slow_ops()`` and the SysSlowOp view.
        """
        if not self.enabled:
            return
        self._stamp_trace(tags)
        self._slow.append(SlowOp(name, 0.0, 0.0, tags))
        self._slow_counter.inc()

    def set_slow_threshold(self, threshold: Optional[float]) -> None:
        """Enable, adjust or disable (None) the slow-op log at runtime.

        Applies to spans finishing after the call; entries already in
        the slow log are kept (their ``threshold`` records the value in
        force when they were captured).
        """
        if threshold is not None and threshold < 0:
            raise ValueError("slow threshold must be >= 0, got %r" % (threshold,))
        self.slow_threshold = threshold

    # -- reading -------------------------------------------------------------

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans, oldest first, optionally filtered by name."""
        if name is None:
            return list(self._buffer)
        return [span for span in self._buffer if span.name == name]

    def roots(self) -> List[Span]:
        """Finished top-level spans (whole-operation trees)."""
        return [span for span in self._buffer if span.parent is None]

    def last(self, name: Optional[str] = None) -> Optional[Span]:
        for span in reversed(self._buffer):
            if name is None or span.name == name:
                return span
        return None

    def slow_ops(self) -> List[SlowOp]:
        return list(self._slow)

    def reset(self) -> None:
        self._buffer.clear()
        self._slow.clear()

    def __len__(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:
        return "<Tracer %d/%d spans, %d slow>" % (
            len(self._buffer),
            self.capacity,
            len(self._slow),
        )
