"""Abstract value domains for predicate analysis.

The rewrite pass (:mod:`repro.analysis.rewrite`) reasons about the set
of values one attribute path can take under a conjunction of sargable
predicates.  This module is that reasoning: a :class:`PathConstraints`
accumulator folds comparisons over *one* path into an interval + point
constraints and decides, conservatively, whether the conjunction is
satisfiable at all and what index-range bound it implies.

Soundness rests on the engine's own comparison semantics
(:func:`repro.query.paths.compare`): the accumulator only draws
conclusions it can witness through ``compare`` itself, so analysis and
execution can never disagree about edge cases (``None`` fails every
ordered comparison, ``!=`` is the literal negation of ``=``, booleans
never equal integers, cross-type ordered comparisons are False).

The caller is responsible for the *path* side of soundness: constraints
may only be accumulated for paths that yield **at most one** terminal
value per object (no set-valued step along the path) — under the
engine's existential path semantics a multi-valued path can satisfy
``p > 5 AND p < 3`` with two different elements, so interval reasoning
would be wrong there.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..query.paths import compare

#: Domains where the integer-tightening refinement applies.
_INTEGER_DOMAIN = "Integer"
_BOOLEAN_DOMAIN = "Boolean"

#: Enumerating candidate integers inside a finite interval is bounded so
#: a silly ``x > 0 AND x < 10**9 AND x != 5`` can't stall analysis.
_MAX_ENUMERATION = 256


def _lt(a: Any, b: Any) -> Optional[bool]:
    """``a < b`` or None when the values are not order-comparable."""
    try:
        return bool(a < b)
    except TypeError:
        return None


class Bound:
    """One side of an interval: a value and whether it is inclusive."""

    __slots__ = ("value", "inclusive")

    def __init__(self, value: Any, inclusive: bool) -> None:
        self.value = value
        self.inclusive = inclusive

    def __repr__(self) -> str:
        return "Bound(%r, %s)" % (self.value, "incl" if self.inclusive else "excl")


class PathConstraints:
    """Conjunction of comparisons over one at-most-one-valued path.

    ``add`` folds one comparison; ``contradiction`` returns a reason
    string when no single value (including ``None``) can satisfy the
    conjunction; ``sargable`` returns the implied two-sided range when
    one exists.
    """

    def __init__(self, domain: Optional[str] = None) -> None:
        self.domain = domain
        self.eq: List[Any] = []
        self.neq: List[Any] = []
        #: Each entry is one IN list (the value must match some member
        #: of every list).
        self.ins: List[List[Any]] = []
        self.likes: List[str] = []
        self.low: Optional[Bound] = None
        self.high: Optional[Bound] = None
        #: A conjunct that is false for every value (e.g. an ordered
        #: comparison against a None literal, or an empty IN list).
        self.always_false: Optional[str] = None
        #: True once any *positive* constraint (one that a None value
        #: cannot satisfy, i.e. anything but ``!=``) has been added.
        self.positive = False

    # -- accumulation ------------------------------------------------------

    def add(self, op: str, value: Any) -> None:
        """Fold ``path op value`` into the constraint set."""
        if op in ("=", "contains"):
            self.positive = True
            self.eq.append(value)
        elif op == "!=":
            self.neq.append(value)
        elif op == "in":
            self.positive = True
            values = list(value) if isinstance(value, (list, tuple)) else [value]
            if not values:
                self.always_false = "IN over an empty list matches nothing"
            else:
                self.ins.append(values)
        elif op == "like":
            self.positive = True
            if isinstance(value, str):
                self.likes.append(value)
            else:
                self.always_false = "LIKE requires a string pattern"
        elif op in ("<", "<=", ">", ">="):
            self.positive = True
            if value is None:
                self.always_false = (
                    "ordered comparison against null matches nothing"
                )
                return
            inclusive = op in ("<=", ">=")
            if op in (">", ">="):
                self.low = self._tighter(self.low, value, inclusive, lower=True)
            else:
                self.high = self._tighter(self.high, value, inclusive, lower=False)

    @staticmethod
    def _tighter(
        current: Optional[Bound], value: Any, inclusive: bool, lower: bool
    ) -> Bound:
        if current is None:
            return Bound(value, inclusive)
        lt = _lt(current.value, value)
        if lt is None:
            # Incomparable bound types: no value can satisfy both, which
            # ``contradiction`` detects; keep the older bound meanwhile.
            return current
        replace = lt if lower else (not lt and _lt(value, current.value))
        if lt is False and _lt(value, current.value) is False:
            # Equal bound values: exclusive wins (it is tighter).
            if not inclusive and current.inclusive:
                return Bound(value, inclusive)
            return current
        return Bound(value, inclusive) if replace else current

    # -- decision ----------------------------------------------------------

    def _admits(self, value: Any) -> bool:
        """Whether one concrete value satisfies every accumulated constraint."""
        for required in self.eq:
            if not compare("=", value, required):
                return False
        for excluded in self.neq:
            if not compare("!=", value, excluded):
                return False
        for members in self.ins:
            if not compare("in", value, members):
                return False
        for pattern in self.likes:
            if not compare("like", value, pattern):
                return False
        if self.low is not None:
            if not compare(">=" if self.low.inclusive else ">", value, self.low.value):
                return False
        if self.high is not None:
            if not compare("<=" if self.high.inclusive else "<", value, self.high.value):
                return False
        return True

    def _candidates(self) -> Optional[List[Any]]:
        """A finite set the value must belong to, when one is known."""
        if self.eq:
            return [self.eq[0]]
        if self.ins:
            return list(self.ins[0])
        if self.domain == _BOOLEAN_DOMAIN:
            # A boolean attribute can only ever hold these (None included:
            # a null flag satisfies every ``!=`` against a non-null literal).
            candidates: List[Any] = [True, False]
            if not self.positive:
                candidates.append(None)
            return candidates
        return None

    def _integer_candidates(self) -> Optional[List[Any]]:
        """Enumerate a small finite integer interval, if there is one."""
        if self.domain != _INTEGER_DOMAIN or self.low is None or self.high is None:
            return None
        low, high = self.low.value, self.high.value
        if not isinstance(low, (int, float)) or not isinstance(high, (int, float)):
            return None
        if isinstance(low, bool) or isinstance(high, bool):
            return None
        import math

        lo = math.ceil(low)
        if lo == low and not self.low.inclusive:
            lo += 1
        hi = math.floor(high)
        if hi == high and not self.high.inclusive:
            hi -= 1
        if hi - lo + 1 > _MAX_ENUMERATION:
            return None
        return list(range(int(lo), int(hi) + 1))

    def contradiction(self) -> Optional[str]:
        """Reason no value satisfies the conjunction, or None if one might."""
        if self.always_false is not None:
            return self.always_false
        for other in self.eq[1:]:
            if not compare("=", self.eq[0], other):
                return "equality constraints %r and %r conflict" % (
                    self.eq[0],
                    other,
                )
        candidates = self._candidates()
        if candidates is None:
            candidates = self._integer_candidates()
        if candidates is not None:
            if not any(self._admits(value) for value in candidates):
                return "no candidate value satisfies every conjunct"
            return None
        if self.low is not None and self.high is not None:
            low, high = self.low.value, self.high.value
            lt = _lt(low, high)
            if lt is None:
                # Bounds of incomparable types: a value satisfying the
                # lower bound can never satisfy the upper one.
                return "range bounds %r and %r are of incomparable types" % (
                    low,
                    high,
                )
            if not lt:
                eq_bounds = _lt(high, low) is False
                if eq_bounds and self.low.inclusive and self.high.inclusive:
                    if not self._admits(low):
                        return "the single in-range value %r is excluded" % (low,)
                    return None
                return "range (%r, %r) is empty" % (low, high)
        return None

    def sargable(self) -> Optional[Tuple[Any, bool, Any, bool]]:
        """The two-sided index range the conjunction implies, if any."""
        if self.always_false is not None or self.eq or self.ins:
            return None
        if self.low is None or self.high is None:
            return None
        return (self.low.value, self.low.inclusive, self.high.value, self.high.inclusive)

    def __repr__(self) -> str:
        return "<PathConstraints eq=%r neq=%r low=%r high=%r>" % (
            self.eq,
            self.neq,
            self.low,
            self.high,
        )


def comparison_implies(op_a: str, const_a: Any, op_b: str, const_b: Any) -> bool:
    """Conservatively: does ``v op_a const_a`` guarantee ``v op_b const_b``?

    Used to drop a conjunct that is already implied by another conjunct
    on the same path (``x > 10`` makes ``x > 5`` tautological).  Only
    returns True when the implication holds for *every* possible value
    under the engine's comparison semantics; unknown cases answer False.
    """
    # A finite witness set: v must equal one of these, so checking the
    # witnesses checks every admissible value.  ``like`` is excluded as a
    # consequence unless the witnesses are strings (a numeric witness
    # equal under ``=`` could still stringify differently).
    witnesses: Optional[List[Any]] = None
    if op_a in ("=", "contains"):
        witnesses = [const_a]
    elif op_a == "in" and isinstance(const_a, (list, tuple)) and const_a:
        witnesses = list(const_a)
    if witnesses is not None:
        if op_b == "like" and not all(isinstance(w, str) for w in witnesses):
            return False
        return all(compare(op_b, w, const_b) for w in witnesses)
    if op_a in (">", ">=") and op_b in (">", ">="):
        need_strict = op_a == ">=" and op_b == ">"
        relation = _lt(const_b, const_a)
        if relation is None:
            return False
        if need_strict:
            return relation
        return relation or _lt(const_a, const_b) is False
    if op_a in ("<", "<=") and op_b in ("<", "<="):
        need_strict = op_a == "<=" and op_b == "<"
        relation = _lt(const_a, const_b)
        if relation is None:
            return False
        if need_strict:
            return relation
        return relation or _lt(const_b, const_a) is False
    if op_b == "!=":
        # A bound excludes the point const_b when const_b lies strictly
        # outside the admissible region (or is order-incomparable with
        # it — then no admissible value can equal it either).
        if op_a == ">":
            return _lt(const_a, const_b) is not True
        if op_a == ">=":
            return _lt(const_b, const_a) is not False
        if op_a == "<":
            return _lt(const_b, const_a) is not True
        if op_a == "<=":
            return _lt(const_a, const_b) is not False
    return False
