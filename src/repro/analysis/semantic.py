"""OQL semantic analysis: type-checking queries against the schema.

The compile-time pass Kim's Section 2.2 calls for: before the optimizer
may pick access paths, a query must be validated against the aggregation
hierarchy (every attribute path must resolve, set-valued steps and
``ONLY`` scope understood) and the generalization hierarchy (methods
resolved under late binding as the union over subclass overrides,
literals checked against attribute domains).  Findings are emitted as
structured :class:`~repro.analysis.diagnostics.Diagnostic` records —
severity, stable code, message, source span — rather than bare
exceptions, and the analyzer additionally infers *class-hierarchy
pruning facts*: subclasses whose instances can never satisfy the
predicate (an attribute redefined to an incompatible domain), which the
planner uses to shrink the evaluation scope.

Diagnostic codes
----------------

========  ==========================================================
ANA001    unknown target class
ANA101    unknown attribute in a path
ANA102    navigation into a primitive domain
ANA201    comparison literal incompatible with the attribute domain
ANA202    CONTAINS on a single-valued path
ANA203    ordered comparison on an unordered domain
ANA204    LIKE on a non-string domain or with a non-string pattern
ANA205    reference-valued path compared with a literal (always false)
ANA301    method selector not understood by any class in scope
ANA302    method called with an arity no override accepts
ANA303    method understood by only part of the hierarchy scope
ANA304    unknown ADT operation
ANA401    aggregate applied to an incompatible domain
ANA402    ORDER BY / GROUP BY over a set-valued (fan-out) path
ANA501    class pruned from scope (info: planner fact, not a fault)
========  ==========================================================
"""

from __future__ import annotations

import difflib
import inspect
from typing import List, Optional, Sequence, Tuple

from ..core.primitives import ANY_CLASS, ROOT_CLASS, is_primitive_class
from ..core.schema import Schema
from ..query.ast import (
    AdtPredicate,
    Aggregate,
    And,
    Comparison,
    Expr,
    MethodCall,
    Not,
    Or,
    Path,
    Query,
    conjuncts,
)
from .diagnostics import DiagnosticReport, SourceSpan
from .resolve import PathResolution, resolve_path

#: Domains whose values admit <, <=, >, >= (plus Any/Object, where the
#: comparison is resolved dynamically).
_ORDERED_DOMAINS = ("Integer", "Float", "String", "Bytes")

#: Domains sum()/avg() can fold.
_NUMERIC_DOMAINS = ("Integer", "Float")


def _literal_kind(value: object) -> str:
    """The primitive domain a parsed OQL literal belongs to."""
    if value is None:
        return "Null"
    if isinstance(value, bool):
        return "Boolean"
    if isinstance(value, int):
        return "Integer"
    if isinstance(value, float):
        return "Float"
    if isinstance(value, str):
        return "String"
    if isinstance(value, bytes):
        return "Bytes"
    if isinstance(value, (list, tuple)):
        return "List"
    return "Unknown"


def _primitive_compatible(domain: str, kind: str) -> bool:
    """Can a literal of primitive class ``kind`` match values of ``domain``?"""
    if kind in ("Null", "Unknown", "List"):
        return True
    if domain == kind:
        return True
    # Numeric widening, both directions: an Integer attribute can hold a
    # value equal to a float literal (7500.0) and vice versa.
    return {domain, kind} <= {"Integer", "Float"}


class _MethodResolution:
    """Union-of-overrides view of a selector over a class scope."""

    __slots__ = ("selector", "defined_on", "missing_on", "arity_ok")

    def __init__(self, selector: str) -> None:
        self.selector = selector
        self.defined_on: List[str] = []
        self.missing_on: List[str] = []
        self.arity_ok: Optional[bool] = None


class SemanticAnalyzer:
    """Type-checks parsed queries against a live schema.

    Parameters
    ----------
    schema:
        The schema to resolve against; the analyzer holds a reference,
        so a single analyzer stays correct across schema evolution.
    adt_registry:
        Optional :class:`~repro.adt.registry.AdtRegistry`; when given,
        ADT predicate names are checked for existence.
    """

    def __init__(self, schema: Schema, adt_registry=None) -> None:
        self.schema = schema
        self.adt_registry = adt_registry

    # -- entry point -----------------------------------------------------

    def check(self, query: Query, source: Optional[str] = None) -> DiagnosticReport:
        """Analyze one parsed query; never raises, never executes."""
        report = DiagnosticReport(source)
        target = query.target_class
        if not self.schema.has_class(target):
            known = [c.name for c in self.schema.classes()]
            hint = difflib.get_close_matches(target, known, n=1, cutoff=0.6)
            report.error(
                "ANA001",
                "class %r is not defined%s"
                % (target, " (did you mean %r?)" % hint[0] if hint else ""),
                getattr(query, "span", None),
            )
            return report
        scope = (
            self.schema.hierarchy_of(target) if query.hierarchy else [target]
        )

        if query.where is not None:
            self._check_expr(report, query, scope, query.where)
            self._infer_pruning(report, query, scope)
        for path in query.projections or []:
            self._resolve(report, target, path)
        for aggregate in query.aggregates or []:
            self._check_aggregate(report, target, aggregate)
        if query.group_by is not None:
            res = self._resolve(report, target, query.group_by)
            if res is not None and res.ok and res.multi:
                report.warning(
                    "ANA402",
                    "GROUP BY %s groups by the first value of a set-valued path"
                    % query.group_by.dotted(),
                    self._span(query.group_by),
                )
        if query.order_by is not None:
            res = self._resolve(report, target, query.order_by)
            if res is not None and res.ok and res.multi:
                report.warning(
                    "ANA402",
                    "ORDER BY %s orders by the first value of a set-valued path"
                    % query.order_by.dotted(),
                    self._span(query.order_by),
                )
        return report

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _span(node) -> Optional[SourceSpan]:
        return getattr(node, "span", None)

    def _resolve(
        self, report: DiagnosticReport, root: str, path: Path
    ) -> Optional[PathResolution]:
        """Resolve a path, reporting ANA101/ANA102 on failure."""
        resolution = resolve_path(self.schema, root, path.steps)
        if resolution.ok:
            return resolution
        span = self._span(path)
        if resolution.suggestion is not None:
            report.error(
                "ANA101",
                "%s (did you mean %r?)" % (resolution.failure, resolution.suggestion),
                span,
            )
        elif "no attribute" in (resolution.failure or ""):
            report.error("ANA101", resolution.failure, span)
        else:
            report.error("ANA102", resolution.failure or "unresolvable path", span)
        return None

    # -- expression walk -------------------------------------------------

    def _check_expr(
        self, report: DiagnosticReport, query: Query, scope: Sequence[str], expr: Expr
    ) -> None:
        if isinstance(expr, (And, Or)):
            for operand in expr.operands:
                self._check_expr(report, query, scope, operand)
        elif isinstance(expr, Not):
            self._check_expr(report, query, scope, expr.operand)
        elif isinstance(expr, Comparison):
            self._check_comparison(report, query.target_class, expr)
        elif isinstance(expr, MethodCall):
            self._check_method_call(report, query, scope, expr)
        elif isinstance(expr, AdtPredicate):
            self._check_adt_predicate(report, query.target_class, expr)

    def _check_comparison(
        self, report: DiagnosticReport, target: str, comparison: Comparison
    ) -> None:
        resolution = self._resolve(report, target, comparison.path)
        if resolution is None or resolution.domain is None:
            return
        domain = resolution.domain
        if domain == ANY_CLASS:
            return  # dynamic dispatch; nothing checkable statically
        span = self._span(comparison) or self._span(comparison.path)
        op = comparison.op
        value = comparison.const.value

        if op == "contains" and not resolution.multi:
            report.warning(
                "ANA202",
                "CONTAINS on single-valued path %s behaves like = "
                "(no set to search)" % comparison.path.dotted(),
                span,
            )

        if op in ("<", "<=", ">", ">="):
            if domain == "Boolean" or (
                not is_primitive_class(domain)
                and domain != ROOT_CLASS
                and not self.schema.is_value_domain(domain)
            ):
                report.error(
                    "ANA203",
                    "ordered comparison %s on %s-valued path %s"
                    % (op, domain, comparison.path.dotted()),
                    span,
                )
                return

        if op == "like":
            if not isinstance(value, str):
                report.error(
                    "ANA204",
                    "LIKE pattern must be a string, got %s"
                    % _literal_kind(value),
                    span,
                )
                return
            if is_primitive_class(domain) and domain != "String":
                report.error(
                    "ANA204",
                    "LIKE on %s-valued path %s (only String values match)"
                    % (domain, comparison.path.dotted()),
                    span,
                )
            return

        literals: Tuple[object, ...]
        if op == "in" and isinstance(value, (list, tuple)):
            literals = tuple(value)
        else:
            literals = (value,)
        for literal in literals:
            self._check_literal_against_domain(
                report, comparison, domain, literal, span
            )

    def _check_literal_against_domain(
        self, report, comparison, domain, literal, span
    ) -> None:
        kind = _literal_kind(literal)
        if kind == "Null":
            return  # null probes test for absence; every domain admits it
        if domain == ROOT_CLASS or self.schema.is_value_domain(domain):
            return  # Object / ADT domains accept any encoded value
        if is_primitive_class(domain):
            if not _primitive_compatible(domain, kind):
                report.error(
                    "ANA201",
                    "comparison %s %s %r: %s literal cannot match %s attribute"
                    % (comparison.path.dotted(), comparison.op, literal, kind, domain),
                    span,
                )
            return
        # Reference-valued domain compared against a parsed literal: OQL
        # literals are never object identifiers, so this is always false.
        report.warning(
            "ANA205",
            "path %s holds %s references; comparison with literal %r "
            "is always false" % (comparison.path.dotted(), domain, literal),
            span,
        )

    # -- methods (late binding over the scope) ---------------------------

    def _check_method_call(
        self, report: DiagnosticReport, query: Query, scope: Sequence[str], call: MethodCall
    ) -> None:
        receiver_classes: List[str]
        if call.path is None:
            receiver_classes = list(scope)
        else:
            resolution = self._resolve(report, query.target_class, call.path)
            if resolution is None or resolution.domain is None:
                return
            domain = resolution.domain
            if domain == ANY_CLASS:
                return
            if is_primitive_class(domain):
                report.error(
                    "ANA102",
                    "method %s() sent to primitive %s value %s"
                    % (call.selector, domain, call.path.dotted()),
                    self._span(call),
                )
                return
            receiver_classes = self.schema.hierarchy_of(domain)

        span = self._span(call)
        res = self._resolve_method(receiver_classes, call.selector)
        res.arity_ok = self.check_arity(receiver_classes, call.selector, len(call.args))
        if not res.defined_on:
            all_selectors = sorted(
                {sel for cls in receiver_classes for sel in self.schema.methods(cls)}
            )
            hint = difflib.get_close_matches(call.selector, all_selectors, n=1, cutoff=0.6)
            report.error(
                "ANA301",
                "no class in scope (%s) understands message %r%s"
                % (
                    ", ".join(receiver_classes[:4])
                    + (", ..." if len(receiver_classes) > 4 else ""),
                    call.selector,
                    " (did you mean %r?)" % hint[0] if hint else "",
                ),
                span,
            )
            return
        if res.missing_on:
            report.warning(
                "ANA303",
                "message %r is understood by %s but not by %s; objects of "
                "the latter will fail at run time"
                % (
                    call.selector,
                    ", ".join(res.defined_on[:4]),
                    ", ".join(res.missing_on[:4]),
                ),
                span,
            )
        if res.arity_ok is False:
            report.error(
                "ANA302",
                "no override of %r accepts %d argument%s"
                % (call.selector, len(call.args), "" if len(call.args) == 1 else "s"),
                span,
            )

    def _resolve_method(
        self, receiver_classes: Sequence[str], selector: str
    ) -> _MethodResolution:
        res = _MethodResolution(selector)
        for cls in receiver_classes:
            if selector in self.schema.methods(cls):
                res.defined_on.append(cls)
            else:
                res.missing_on.append(cls)
        return res

    def method_coverage(
        self, receiver_classes: Sequence[str], selector: str
    ) -> Tuple[List[str], List[str]]:
        """(classes understanding ``selector``, classes not understanding it)."""
        res = self._resolve_method(receiver_classes, selector)
        return res.defined_on, res.missing_on

    def check_arity(
        self, receiver_classes: Sequence[str], selector: str, n_args: int
    ) -> Optional[bool]:
        """Does *any* override of ``selector`` accept ``n_args``?

        Late binding means the call site is legal if the union of return
        types over subclass overrides contains a signature that fits.
        Returns None when no override's signature is introspectable.
        """
        any_known = False
        for cls in receiver_classes:
            meth = self.schema.methods(cls).get(selector)
            if meth is None:
                continue
            fits = _signature_accepts(meth.fn, n_args)
            if fits is None:
                continue
            any_known = True
            if fits:
                return True
        return False if any_known else None

    # -- ADT predicates --------------------------------------------------

    def _check_adt_predicate(
        self, report: DiagnosticReport, target: str, predicate: AdtPredicate
    ) -> None:
        self._resolve(report, target, predicate.path)
        if self.adt_registry is not None and not self.adt_registry.has_operation(
            predicate.name
        ):
            report.error(
                "ANA304",
                "unknown ADT operation %r" % (predicate.name,),
                self._span(predicate),
            )

    # -- aggregates ------------------------------------------------------

    def _check_aggregate(
        self, report: DiagnosticReport, target: str, aggregate: Aggregate
    ) -> None:
        if aggregate.path is None:
            return  # count(*) applies to anything
        resolution = self._resolve(report, target, aggregate.path)
        if resolution is None or resolution.domain is None:
            return
        domain = resolution.domain
        if domain in (ANY_CLASS, ROOT_CLASS) or self.schema.is_value_domain(domain):
            return
        span = self._span(aggregate) or self._span(aggregate.path)
        if aggregate.fn in ("sum", "avg") and domain not in _NUMERIC_DOMAINS:
            report.error(
                "ANA401",
                "%s(%s) needs a numeric path; %s is %s"
                % (aggregate.fn.upper(), aggregate.path.dotted(),
                   aggregate.path.dotted(), domain),
                span,
            )
        elif aggregate.fn in ("min", "max") and (
            domain not in _ORDERED_DOMAINS
        ):
            report.error(
                "ANA401",
                "%s(%s) needs an ordered domain; %s is %s"
                % (aggregate.fn.upper(), aggregate.path.dotted(),
                   aggregate.path.dotted(), domain),
                span,
            )

    # -- class-hierarchy pruning facts -----------------------------------

    def _infer_pruning(
        self, report: DiagnosticReport, query: Query, scope: Sequence[str]
    ) -> None:
        """Drop subclasses for which a top-level conjunct cannot hold.

        Sound because a conjunct unsatisfiable for a class makes the
        whole WHERE unsatisfiable for that class's instances.  The
        classic case is an attribute *redefined* to an incompatible
        domain in a subclass (core concept 5 allows shadowing).
        """
        if len(scope) <= 1:
            return
        for predicate in conjuncts(query.where):
            if not isinstance(predicate, Comparison):
                continue
            base = resolve_path(self.schema, query.target_class, predicate.path.steps)
            if not base.ok or base.domain is None:
                continue
            for cls in scope:
                if cls == query.target_class or cls in report.pruned_classes:
                    continue
                res = resolve_path(self.schema, cls, predicate.path.steps)
                if not res.ok or res.domain is None or res.domain == base.domain:
                    continue
                if self._unsatisfiable(res.domain, predicate):
                    report.prune(
                        cls,
                        "attribute path %s is %s-valued here; predicate %r "
                        "cannot hold" % (predicate.path.dotted(), res.domain, predicate),
                        self._span(predicate),
                    )

    def _unsatisfiable(self, domain: str, comparison: Comparison) -> bool:
        """Can no value of ``domain`` satisfy the comparison?"""
        if domain in (ANY_CLASS, ROOT_CLASS) or self.schema.is_value_domain(domain):
            return False
        value = comparison.const.value
        op = comparison.op
        if op in ("<", "<=", ">", ">="):
            if domain == "Boolean" or not is_primitive_class(domain):
                return True
            kind = _literal_kind(value)
            if kind in ("Null", "Unknown"):
                return False
            # Ordered comparison across incomparable primitive domains
            # (e.g. a String-redefined attribute against an Integer
            # literal) evaluates to false for every value.
            return not _primitive_compatible(domain, kind)
        if op == "like":
            return is_primitive_class(domain) and domain != "String"
        literals = value if op == "in" and isinstance(value, (list, tuple)) else [value]
        kinds = [_literal_kind(v) for v in literals]
        if any(k == "Null" for k in kinds):
            return False
        if is_primitive_class(domain):
            return not any(_primitive_compatible(domain, k) for k in kinds)
        # Reference domain vs. literals: never equal (see ANA205), but a
        # != probe is then always true, so only prune the positive forms.
        return op in ("=", "in", "contains")


def _signature_accepts(fn, n_args: int) -> Optional[bool]:
    """Whether ``fn(receiver, *args)`` accepts ``n_args`` extra positionals.

    Returns None when the signature cannot be introspected (C builtins,
    odd callables) — the analyzer then stays silent rather than guessing.
    """
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return None
    positional = 0
    required = 0
    has_var = False
    params = list(signature.parameters.values())[1:]  # drop the receiver
    for param in params:
        if param.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
            if param.default is inspect.Parameter.empty:
                required += 1
        elif param.kind == inspect.Parameter.VAR_POSITIONAL:
            has_var = True
    if n_args < required:
        return False
    if n_args > positional and not has_var:
        return False
    return True
