"""Structured diagnostics for compile-time analysis.

A :class:`Diagnostic` is one finding: severity, a stable code (``ANA101``
style, see the table in README.md), a human message and an optional
:class:`SourceSpan` locating it in the query text.  A
:class:`DiagnosticReport` collects the findings of one analysis run and
renders them with the same caret lines the parser uses for syntax
errors, so every compile-time message points at its source the same way.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from ..errors import caret_snippet, source_position

#: Severities, in increasing order of badness.  ``INFO`` diagnostics are
#: facts the planner can exploit (e.g. subclass pruning), ``WARNING``
#: means the query will run but may surprise, ``ERROR`` blocks planning.
INFO, WARNING, ERROR = "info", "warning", "error"

_SEVERITY_RANK = {INFO: 0, WARNING: 1, ERROR: 2}


class SourceSpan:
    """A half-open [start, end) character range in the query text."""

    __slots__ = ("start", "end")

    def __init__(self, start: int, end: Optional[int] = None) -> None:
        self.start = start
        self.end = end if end is not None else start + 1

    def __len__(self) -> int:
        return max(1, self.end - self.start)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceSpan)
            and other.start == self.start
            and other.end == self.end
        )

    def __repr__(self) -> str:
        return "SourceSpan(%d, %d)" % (self.start, self.end)


class Diagnostic:
    """One analysis finding."""

    __slots__ = ("severity", "code", "message", "span")

    def __init__(
        self,
        severity: str,
        code: str,
        message: str,
        span: Optional[SourceSpan] = None,
    ) -> None:
        if severity not in _SEVERITY_RANK:
            raise ValueError("unknown severity %r" % (severity,))
        self.severity = severity
        self.code = code
        self.message = message
        self.span = span

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
        }
        if self.span is not None:
            out["span"] = [self.span.start, self.span.end]
        return out

    def render(self, source: Optional[str] = None) -> str:
        head = "%s %s: %s" % (self.severity, self.code, self.message)
        if source is None or self.span is None:
            return head
        line, column = source_position(source, self.span.start)
        return "%s (line %d, column %d)\n%s" % (
            head,
            line,
            column,
            caret_snippet(source, self.span.start, len(self.span)),
        )

    def __repr__(self) -> str:
        return "<Diagnostic %s %s %r>" % (self.severity, self.code, self.message)


class DiagnosticReport:
    """All findings of one semantic-analysis run.

    Truthy when the query passed (no errors); iterable over diagnostics
    in source order.  ``pruned_classes`` carries the class-hierarchy
    pruning facts the analyzer inferred (subclasses for which the
    predicate is statically unsatisfiable) for the planner.
    """

    def __init__(self, source: Optional[str] = None) -> None:
        self.source = source
        self.diagnostics: List[Diagnostic] = []
        #: Classes in the query scope whose instances can never satisfy
        #: the predicate (e.g. an attribute redefined to an incompatible
        #: domain in a subclass).  The planner drops them from the scan.
        self.pruned_classes: List[str] = []

    # -- collection ------------------------------------------------------

    def add(
        self,
        severity: str,
        code: str,
        message: str,
        span: Optional[SourceSpan] = None,
    ) -> Diagnostic:
        diag = Diagnostic(severity, code, message, span)
        self.diagnostics.append(diag)
        return diag

    def error(self, code: str, message: str, span: Optional[SourceSpan] = None) -> Diagnostic:
        return self.add(ERROR, code, message, span)

    def warning(self, code: str, message: str, span: Optional[SourceSpan] = None) -> Diagnostic:
        return self.add(WARNING, code, message, span)

    def info(self, code: str, message: str, span: Optional[SourceSpan] = None) -> Diagnostic:
        return self.add(INFO, code, message, span)

    def prune(self, class_name: str, reason: str, span: Optional[SourceSpan] = None) -> None:
        if class_name not in self.pruned_classes:
            self.pruned_classes.append(class_name)
        self.info("ANA501", "class %s pruned from scope: %s" % (class_name, reason), span)

    # -- reading ---------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def __bool__(self) -> bool:
        return self.ok

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "pruned_classes": list(self.pruned_classes),
        }

    def render(self) -> str:
        if not self.diagnostics:
            return "ok (no diagnostics)"
        return "\n".join(d.render(self.source) for d in self.diagnostics)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return "<DiagnosticReport %d diagnostics, %d errors>" % (
            len(self.diagnostics),
            len(self.errors),
        )
