"""WHERE-clause normalization and abstract interpretation.

This pass runs between the semantic gate and the planner.  It rewrites
the predicate into one canonical form — constant folding, NOT-pushdown,
conjunctive normal form, commutative operands in a deterministic order —
then interprets the top-level conjuncts over the abstract value domains
of :mod:`repro.analysis.domains` to:

* **prove contradictions**: a WHERE clause no object can satisfy gets a
  ``REW001`` diagnostic and the planner short-circuits it to an empty
  scan that touches no storage and takes no scan locks;
* **eliminate tautological conjuncts** (``REW002``): a conjunct implied
  by another on the same path (``x > 5`` next to ``x > 10``) is dropped
  from the predicate, and a CNF clause containing ``X OR NOT X`` is
  removed entirely;
* **derive sargable bounds** (``REW003``): two-sided ranges accumulated
  across conjuncts (``x > 5 AND x <= 9``) are handed to the planner's
  index selection as :class:`AnalysisFacts`, enabling a single two-sided
  index range probe where per-conjunct matching only sees one side.

Every rewrite is *sound* under the engine's existential path semantics:
transformations that assume a path yields exactly one value (``NOT``
pushed into ``=``/``!=``, interval contradictions) are applied only when
the path is a single non-set-valued step in every class of the query
scope; witness-based rules (conjunct implication, De Morgan) hold for
any fan-out.  The canonical form is also what the plan cache fingerprint
hashes, so structurally equal queries share one cache entry.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.primitives import ANY_CLASS
from ..query.ast import (
    AdtPredicate,
    And,
    Comparison,
    Const,
    Expr,
    Not,
    Or,
    Query,
    conjuncts,
    structural_key,
)
from .diagnostics import Diagnostic, INFO
from .domains import PathConstraints, comparison_implies
from .resolve import resolve_path

#: Distributing OR over AND is bounded: past this many CNF clauses the
#: expression is left in its (already normalized) non-CNF shape.
_MAX_CNF_CLAUSES = 24


class AnalysisFacts:
    """What abstract interpretation proved about one query's predicate.

    ``ranges`` maps a path's step tuple to the two-sided bound
    ``(low, low_inclusive, high, high_inclusive)`` every matching object
    must satisfy — valid for index probing because the path yields at
    most one value per object in every class of the query scope.
    """

    __slots__ = ("contradiction", "reason", "ranges")

    def __init__(self) -> None:
        self.contradiction = False
        self.reason: Optional[str] = None
        self.ranges: Dict[Tuple[str, ...], Tuple[Any, bool, Any, bool]] = {}

    def __repr__(self) -> str:
        if self.contradiction:
            return "<AnalysisFacts contradiction: %s>" % (self.reason,)
        return "<AnalysisFacts ranges=%r>" % (self.ranges,)


class RewriteResult:
    """Outcome of one rewrite run: the normalized query plus evidence."""

    __slots__ = ("query", "rules", "diagnostics", "facts", "fingerprint", "changed")

    def __init__(
        self,
        query: Query,
        rules: List[Tuple[str, str]],
        diagnostics: List[Diagnostic],
        facts: AnalysisFacts,
        fingerprint: str,
        changed: bool,
    ) -> None:
        self.query = query
        #: ``(rule-name, detail)`` pairs in application order — rendered
        #: by EXPLAIN's ``-- rewrite --`` section.
        self.rules = rules
        self.diagnostics = diagnostics
        self.facts = facts
        self.fingerprint = fingerprint
        self.changed = changed

    def __repr__(self) -> str:
        return "<RewriteResult %s %d rule(s)%s>" % (
            self.fingerprint,
            len(self.rules),
            " CONTRADICTION" if self.facts.contradiction else "",
        )


def query_fingerprint(query: Query) -> str:
    """Hash of the normalized query's structure (plan-cache key part)."""
    parts = [
        "target=%s" % query.target_class,
        "hier=%d" % int(query.hierarchy),
        "where=%s" % structural_key(query.where),
        "proj=%s"
        % (
            ",".join(".".join(p.steps) for p in query.projections)
            if query.projections
            else "-"
        ),
        "order=%s" % (".".join(query.order_by.steps) if query.order_by else "-"),
        "desc=%d" % int(query.descending),
        "limit=%r" % (query.limit,),
        "agg=%s"
        % (
            ",".join(
                "%s(%s)" % (a.fn, ".".join(a.path.steps) if a.path else "*")
                for a in query.aggregates
            )
            if query.aggregates
            else "-"
        ),
        "group=%s" % (".".join(query.group_by.steps) if query.group_by else "-"),
    ]
    return hashlib.sha1("|".join(parts).encode("utf-8")).hexdigest()[:16]


def rewrite_query(
    schema: Any, query: Query, exclude_classes: Sequence[str] = ()
) -> RewriteResult:
    """Normalize and abstractly interpret one parsed, semantically-valid query."""
    rules: List[Tuple[str, str]] = []
    diags: List[Diagnostic] = []
    facts = AnalysisFacts()
    scope = _scope_of(schema, query, exclude_classes)

    where = query.where
    if where is not None:
        where = _fold(where, rules)
        flip_ok = _flip_ok_paths(schema, scope, where)
        if where is not None:
            where = _push_not(where, flip_ok, rules)
            where = _fold(where, None)
        if where is not None:
            where = _to_cnf(where, rules)
            where = _drop_tautologies(where, flip_ok, rules, diags)
        if where is not None:
            where = _canonicalize(where, rules)
        if where is not None:
            where = _analyze_conjuncts(
                schema, query, scope, where, rules, diags, facts
            )
    changed = structural_key(where) != structural_key(query.where)
    normalized = _clone(query, where) if changed else query
    return RewriteResult(
        normalized, rules, diags, facts, query_fingerprint(normalized), changed
    )


# -- normalization -----------------------------------------------------------


def _note(rules: Optional[List[Tuple[str, str]]], rule: str, detail: str) -> None:
    if rules is not None:
        rules.append((rule, detail))


def _fold(expr: Expr, rules: Optional[List[Tuple[str, str]]]) -> Expr:
    """Constant folding: flatten/dedupe AND-OR nests, normalize IN lists,
    collapse double negation.  Bottom-up and idempotent."""
    if isinstance(expr, Not):
        inner = _fold(expr.operand, rules)
        if isinstance(inner, Not):
            _note(rules, "const-fold", "double negation removed: %r" % (expr,))
            return inner.operand
        return expr if inner is expr.operand else Not(inner)
    if isinstance(expr, (And, Or)):
        kind = type(expr)
        flat: List[Expr] = []
        flattened = False
        for operand in expr.operands:
            folded = _fold(operand, rules)
            if isinstance(folded, kind):
                flat.extend(folded.operands)
                flattened = True
            else:
                flat.append(folded)
        seen: Set[str] = set()
        out: List[Expr] = []
        for operand in flat:
            key = structural_key(operand)
            if key in seen:
                _note(rules, "const-fold", "duplicate operand removed: %s" % key)
                continue
            seen.add(key)
            out.append(operand)
        if flattened:
            _note(rules, "const-fold", "nested %s flattened" % kind.__name__.upper())
        if len(out) == 1:
            return out[0]
        if not flattened and len(out) == len(expr.operands) and all(
            a is b for a, b in zip(out, expr.operands)
        ):
            return expr
        return kind(out)
    if isinstance(expr, Comparison) and expr.op == "in":
        values = list(expr.const.value)
        seen_tokens: Set[str] = set()
        unique: List[Any] = []
        for value in values:
            token = "%s:%r" % (type(value).__name__, value)
            if token in seen_tokens:
                continue
            seen_tokens.add(token)
            unique.append(value)
        unique.sort(key=lambda v: "%s:%r" % (type(v).__name__, v))
        if len(unique) == 1:
            _note(rules, "const-fold", "single-element IN folded to = on %s"
                  % expr.path.dotted())
            folded_cmp = Comparison("=", expr.path, Const(unique[0]))
            folded_cmp.span = expr.span
            return folded_cmp
        if unique != values:
            _note(rules, "const-fold", "IN list deduplicated/ordered on %s"
                  % expr.path.dotted())
            folded_cmp = Comparison("in", expr.path, Const(unique))
            folded_cmp.span = expr.span
            return folded_cmp
    return expr


def _flip_ok_paths(schema: Any, scope: Sequence[str], where: Expr) -> Set[Tuple[str, ...]]:
    """Paths for which ``NOT (p = c)`` ⇔ ``p != c`` is a sound rewrite.

    The equivalence needs the path to yield *exactly one* value per
    object: a single-step path on an attribute declared non-set-valued
    (and non-``Any``) in every class of the scope — such a path always
    yields one value, possibly None, and ``!=`` is the literal negation
    of ``=`` per value.
    """
    paths: Set[Tuple[str, ...]] = set()

    def visit(node: Expr) -> None:
        if isinstance(node, Comparison):
            paths.add(node.path.steps)
        for child in node.children():
            visit(child)

    visit(where)
    ok: Set[Tuple[str, ...]] = set()
    for steps in paths:
        if len(steps) != 1:
            continue
        sound = True
        for cls in scope:
            attr = schema.attributes(cls).get(steps[0])
            if attr is None or attr.multi or attr.domain == ANY_CLASS:
                sound = False
                break
        if sound:
            ok.add(steps)
    return ok


def _push_not(
    expr: Expr,
    flip_ok: Set[Tuple[str, ...]],
    rules: Optional[List[Tuple[str, str]]],
) -> Expr:
    """Negation-normal form: De Morgan over AND/OR (always sound), with
    ``NOT`` absorbed into ``=``/``!=`` leaves on exactly-one-valued paths.
    Ordered operators are never flipped (``NOT (x < 5)`` is not
    ``x >= 5`` when x is null)."""
    if isinstance(expr, Not):
        inner = expr.operand
        if isinstance(inner, Not):
            return _push_not(inner.operand, flip_ok, rules)
        if isinstance(inner, (And, Or)):
            kind = Or if isinstance(inner, And) else And
            _note(rules, "not-pushdown", "De Morgan over %s"
                  % type(inner).__name__.upper())
            return kind([_push_not(Not(o), flip_ok, rules) for o in inner.operands])
        if (
            isinstance(inner, Comparison)
            and inner.op in ("=", "!=")
            and inner.path.steps in flip_ok
        ):
            flipped = Comparison(
                "!=" if inner.op == "=" else "=", inner.path, inner.const
            )
            flipped.span = inner.span
            _note(rules, "not-pushdown", "NOT absorbed: %r -> %r" % (expr, flipped))
            return flipped
        pushed = _push_not(inner, flip_ok, rules)
        return expr if pushed is inner else Not(pushed)
    if isinstance(expr, (And, Or)):
        kind = type(expr)
        operands = [_push_not(o, flip_ok, rules) for o in expr.operands]
        if all(a is b for a, b in zip(operands, expr.operands)):
            return expr
        return kind(operands)
    return expr


def _to_cnf(expr: Expr, rules: Optional[List[Tuple[str, str]]]) -> Expr:
    """Conjunctive normal form with a clause-count bound.

    Works on clause sets (clause = list of OR-ed literals); gives up and
    returns the input untouched when distribution would exceed
    ``_MAX_CNF_CLAUSES``.
    """
    before = structural_key(expr)
    clause_sets = _clauses(expr)
    if clause_sets is None:
        return expr
    rebuilt = _from_clauses(clause_sets)
    if rebuilt is None:
        return expr
    if structural_key(rebuilt) != before:
        _note(rules, "cnf", "OR distributed over AND (%d clause(s))"
              % len(clause_sets))
    return rebuilt


def _clauses(expr: Expr) -> Optional[List[List[Expr]]]:
    if isinstance(expr, And):
        out: List[List[Expr]] = []
        for operand in expr.operands:
            sub = _clauses(operand)
            if sub is None:
                return None
            out.extend(sub)
        return out
    if isinstance(expr, Or):
        acc: List[List[Expr]] = [[]]
        for operand in expr.operands:
            sub = _clauses(operand)
            if sub is None or len(acc) * len(sub) > _MAX_CNF_CLAUSES:
                return None
            acc = [left + right for left in acc for right in sub]
        return acc
    return [[expr]]


def _from_clauses(clause_sets: List[List[Expr]]) -> Optional[Expr]:
    clauses: List[Expr] = []
    seen: Set[str] = set()
    for literals in clause_sets:
        unique: List[Expr] = []
        lit_seen: Set[str] = set()
        for literal in literals:
            key = structural_key(literal)
            if key in lit_seen:
                continue
            lit_seen.add(key)
            unique.append(literal)
        clause = unique[0] if len(unique) == 1 else Or(unique)
        key = structural_key(clause)
        if key in seen:
            continue
        seen.add(key)
        clauses.append(clause)
    if not clauses:
        return None
    if len(clauses) == 1:
        return clauses[0]
    return And(clauses)


def _complementary_eq(clause: Or, flip_ok: Set[Tuple[str, ...]]) -> bool:
    """``p = c OR p != c`` on an exactly-one-valued path is always true.

    (On a fan-out path it is not: an object with zero terminal values
    fails both disjuncts.)
    """
    eqs = {
        structural_key(Comparison("=", o.path, o.const))
        for o in clause.operands
        if isinstance(o, Comparison) and o.op == "!=" and o.path.steps in flip_ok
    }
    return any(
        isinstance(o, Comparison) and o.op == "=" and structural_key(o) in eqs
        for o in clause.operands
    )


def _drop_tautologies(
    expr: Expr,
    flip_ok: Set[Tuple[str, ...]],
    rules: Optional[List[Tuple[str, str]]],
    diags: List[Diagnostic],
) -> Optional[Expr]:
    """Remove top-level CNF clauses of the shape ``X OR NOT X``.

    Sound for any deterministic predicate X: per object, X either holds
    (left disjunct) or does not (right disjunct).  Also catches the
    post-NOT-pushdown spelling ``p = c OR p != c`` on exactly-one-valued
    paths.  Returns None when the whole predicate reduces to TRUE.
    """
    kept: List[Expr] = []
    for clause in conjuncts(expr):
        if isinstance(clause, Or):
            keys = {structural_key(o) for o in clause.operands}
            tautology = any(
                isinstance(o, Not) and structural_key(o.operand) in keys
                for o in clause.operands
            ) or _complementary_eq(clause, flip_ok)
            if tautology:
                _note(rules, "tautology", "always-true clause removed: %r" % (clause,))
                diags.append(
                    Diagnostic(
                        INFO,
                        "REW002",
                        "tautological clause %r eliminated" % (clause,),
                        _span_of(clause),
                    )
                )
                continue
        kept.append(clause)
    if not kept:
        return None
    if len(kept) == 1:
        return kept[0]
    if len(kept) == len(conjuncts(expr)):
        return expr
    return And(kept)


def _sort_rank(expr: Expr) -> int:
    if isinstance(expr, Comparison):
        return 0
    if isinstance(expr, AdtPredicate):
        return 1
    if isinstance(expr, Not):
        return 2
    if isinstance(expr, (And, Or)):
        return 3
    return 4  # MethodCall and anything else opaque: evaluate last


def _sort_cost(expr: Expr) -> int:
    if isinstance(expr, Comparison):
        return len(expr.path.steps)
    if isinstance(expr, Not):
        return _sort_cost(expr.operand)
    return 0


def _sort_key(expr: Expr) -> Tuple[int, int, str]:
    return (_sort_rank(expr), _sort_cost(expr), structural_key(expr))


def _canonicalize(expr: Expr, rules: Optional[List[Tuple[str, str]]]) -> Expr:
    """Deterministic operand order for commutative connectives.

    Cheap predicates first (comparisons by path length — a one-step
    comparison never dereferences, a method call always sends), then a
    stable structural tiebreak; so the canonical form is also the
    cheapest short-circuit order.
    """
    changed = [False]

    def rec(node: Expr) -> Expr:
        if isinstance(node, (And, Or)):
            kind = type(node)
            operands = [rec(o) for o in node.operands]
            ordered = sorted(operands, key=_sort_key)
            if [structural_key(o) for o in ordered] != [
                structural_key(o) for o in node.operands
            ]:
                changed[0] = True
                return kind(ordered)
            if all(a is b for a, b in zip(operands, node.operands)):
                return node
            return kind(operands)
        if isinstance(node, Not):
            inner = rec(node.operand)
            return node if inner is node.operand else Not(inner)
        return node

    out = rec(expr)
    if changed[0]:
        _note(rules, "canonical-order", "commutative operands reordered")
    return out


# -- abstract interpretation --------------------------------------------------


def _scope_of(schema: Any, query: Query, exclude_classes: Sequence[str]) -> List[str]:
    scope = [query.target_class]
    if query.hierarchy and schema.has_class(query.target_class):
        scope.extend(schema.subclasses(query.target_class))
    excluded = set(exclude_classes) - {query.target_class}
    return [cls for cls in scope if cls not in excluded]


def _span_of(expr: Optional[Expr]):
    if expr is None:
        return None
    span = getattr(expr, "span", None)
    if span is not None:
        return span
    for child in expr.children():
        span = _span_of(child)
        if span is not None:
            return span
    return None


def _universal_false(conjunct: Expr) -> Optional[str]:
    """A conjunct false for *every* object regardless of class or fan-out."""
    if not isinstance(conjunct, Comparison):
        return None
    value = conjunct.const.value
    if conjunct.op == "in" and isinstance(value, (list, tuple)) and not value:
        return "IN over an empty list matches nothing"
    if conjunct.op in ("<", "<=", ">", ">=") and value is None:
        return "ordered comparison against null matches nothing"
    if conjunct.op == "like" and not isinstance(value, str):
        return "LIKE requires a string pattern"
    return None


def _analyze_conjuncts(
    schema: Any,
    query: Query,
    scope: List[str],
    where: Expr,
    rules: List[Tuple[str, str]],
    diags: List[Diagnostic],
    facts: AnalysisFacts,
) -> Optional[Expr]:
    conjs = conjuncts(where)
    keys = [structural_key(c) for c in conjs]
    keyset = set(keys)

    # Structural contradiction: A AND NOT A (any deterministic A).
    contradiction: Optional[str] = None
    for conjunct in conjs:
        if isinstance(conjunct, Not) and structural_key(conjunct.operand) in keyset:
            contradiction = "conjunct %r contradicts its own negation" % (
                conjunct.operand,
            )
            break

    # Universally-false conjuncts (class- and fan-out-independent).
    if contradiction is None:
        for conjunct in conjs:
            reason = _universal_false(conjunct)
            if reason is not None:
                contradiction = "%r: %s" % (conjunct, reason)
                break

    # Per-class interval/type analysis over at-most-one-valued paths.
    sarg_ok: Dict[Tuple[str, ...], bool] = {}
    target_constraints: Dict[Tuple[str, ...], PathConstraints] = {}
    if contradiction is None and scope:
        empty_reasons: List[str] = []
        all_empty = True
        for cls in scope:
            constraints: Dict[Tuple[str, ...], PathConstraints] = {}
            for conjunct in conjs:
                if not isinstance(conjunct, Comparison):
                    continue
                steps = conjunct.path.steps
                res = resolve_path(schema, cls, steps)
                usable = (
                    res.ok
                    and len(res.attrs) == len(steps)
                    and not res.multi
                    and res.domain != ANY_CLASS
                )
                sarg_ok[steps] = sarg_ok.get(steps, True) and usable
                if not usable:
                    continue
                constraints.setdefault(steps, PathConstraints(res.domain)).add(
                    conjunct.op, conjunct.const.value
                )
            if cls == query.target_class:
                target_constraints = constraints
            reason = None
            for steps, pc in constraints.items():
                verdict = pc.contradiction()
                if verdict is not None:
                    reason = "%s.%s: %s" % (cls, ".".join(steps), verdict)
                    break
            if reason is None:
                all_empty = False
            elif len(empty_reasons) < 3:
                empty_reasons.append(reason)
        if all_empty and empty_reasons:
            contradiction = "; ".join(empty_reasons)

    if contradiction is not None:
        facts.contradiction = True
        facts.reason = contradiction
        rules.append(("contradiction", contradiction))
        diags.append(
            Diagnostic(
                INFO,
                "REW001",
                "WHERE clause is provably unsatisfiable (%s); "
                "query short-circuits to an empty scan" % contradiction,
                _span_of(where),
            )
        )
        return where

    # Sargable two-sided ranges for the planner's index selection.
    for steps, pc in target_constraints.items():
        if not sarg_ok.get(steps, False):
            continue
        bounds = pc.sargable()
        if bounds is None:
            continue
        facts.ranges[steps] = bounds
        low, low_inc, high, high_inc = bounds
        detail = "%s %s %r .. %s %r" % (
            ".".join(steps),
            ">=" if low_inc else ">",
            low,
            "<=" if high_inc else "<",
            high,
        )
        rules.append(("sargable-range", detail))
        diags.append(
            Diagnostic(
                INFO,
                "REW003",
                "conjuncts narrow %s to the sargable range %s"
                % (".".join(steps), detail),
                _span_of(where),
            )
        )

    # Implied-conjunct elimination (witness-sound for any fan-out).
    dropped: Set[int] = set()
    for i, candidate in enumerate(conjs):
        if not isinstance(candidate, Comparison):
            continue
        for j, other in enumerate(conjs):
            if i == j or j in dropped or not isinstance(other, Comparison):
                continue
            if other.path.steps != candidate.path.steps:
                continue
            if comparison_implies(
                other.op, other.const.value, candidate.op, candidate.const.value
            ):
                mutual = comparison_implies(
                    candidate.op, candidate.const.value, other.op, other.const.value
                )
                if mutual and i < j:
                    continue  # equivalent conjuncts: keep the first
                dropped.add(i)
                detail = "dropped %r: implied by %r" % (candidate, other)
                rules.append(("implied-conjunct", detail))
                diags.append(
                    Diagnostic(
                        INFO,
                        "REW002",
                        "tautological conjunct %r eliminated (implied by %r)"
                        % (candidate, other),
                        _span_of(candidate),
                    )
                )
                break
    if dropped:
        kept = [c for idx, c in enumerate(conjs) if idx not in dropped]
        if not kept:
            return None
        if len(kept) == 1:
            return kept[0]
        return And(kept)
    return where


def _clone(query: Query, where: Optional[Expr]) -> Query:
    clone = Query(
        query.target_class,
        variable=query.variable,
        where=where,
        hierarchy=query.hierarchy,
        projections=query.projections,
        order_by=query.order_by,
        descending=query.descending,
        limit=query.limit,
        aggregates=query.aggregates,
        group_by=query.group_by,
    )
    clone.span = query.span
    return clone
