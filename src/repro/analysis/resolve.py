"""Attribute-path resolution through the aggregation hierarchy.

The one implementation of "walk ``v.a.b.c`` against the schema" shared
by compile-time semantic analysis (:mod:`repro.analysis.semantic`) and
plan-time validation (:func:`repro.query.paths.validate_path` delegates
here), so the two can never drift apart.

Resolution follows the paper's reading of domains: each step must be an
attribute of the class reached so far (inherited attributes included);
non-terminal steps must have a class domain so the walk can continue;
``Any``-typed steps end static checking (dynamic dispatch takes over at
run time).
"""

from __future__ import annotations

import difflib
from typing import List, Optional, Sequence

from ..core.attribute import AttributeDef
from ..core.primitives import ANY_CLASS, is_primitive_class
from ..core.schema import Schema


class PathResolution:
    """Outcome of resolving one attribute path against one class.

    ``ok`` is False when resolution failed; then ``failed_step`` is the
    index of the offending step and ``failure`` the reason.  On success
    ``domain`` is the terminal attribute's domain class and ``attrs``
    the per-step attribute definitions (empty past an ``Any`` step).
    """

    __slots__ = (
        "root_class",
        "steps",
        "domain",
        "attrs",
        "multi",
        "failed_step",
        "failure",
        "suggestion",
    )

    def __init__(self, root_class: str, steps: Sequence[str]) -> None:
        self.root_class = root_class
        self.steps = tuple(steps)
        self.domain: Optional[str] = None
        self.attrs: List[AttributeDef] = []
        #: True when any step along the path is set-valued (fan-out).
        self.multi = False
        self.failed_step: Optional[int] = None
        self.failure: Optional[str] = None
        #: Closest declared attribute name when a step is unknown.
        self.suggestion: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def terminal_attr(self) -> Optional[AttributeDef]:
        return self.attrs[-1] if self.attrs else None

    def dotted(self) -> str:
        return ".".join(self.steps)

    def __repr__(self) -> str:
        status = self.domain if self.ok else "failed@%s" % (self.failed_step,)
        return "<PathResolution %s.%s -> %s>" % (self.root_class, self.dotted(), status)


def resolve_path(
    schema: Schema, root_class: str, steps: Sequence[str]
) -> PathResolution:
    """Resolve ``steps`` starting from ``root_class``; never raises.

    The caller inspects ``.ok`` / ``.failure``; plan-time validation
    turns a failure into :class:`~repro.errors.QueryError`, compile-time
    analysis into a :class:`~repro.analysis.diagnostics.Diagnostic`.
    """
    resolution = PathResolution(root_class, steps)
    if not schema.has_class(root_class):
        resolution.failed_step = -1
        resolution.failure = "class %r is not defined" % (root_class,)
        return resolution
    current = root_class
    for step_no, attr_name in enumerate(steps):
        if current == ANY_CLASS:
            # Static checking ends at a wildcard domain; the remaining
            # steps are resolved dynamically per object at run time.
            resolution.domain = ANY_CLASS
            return resolution
        if is_primitive_class(current):
            resolution.failed_step = step_no
            resolution.failure = (
                "cannot navigate into primitive domain %s (step %r of %r)"
                % (current, attr_name, resolution.dotted())
            )
            return resolution
        declared = schema.attributes(current)
        attr = declared.get(attr_name)
        if attr is None:
            resolution.failed_step = step_no
            resolution.failure = "class %s has no attribute %r" % (current, attr_name)
            close = difflib.get_close_matches(attr_name, declared, n=1, cutoff=0.6)
            resolution.suggestion = close[0] if close else None
            return resolution
        resolution.attrs.append(attr)
        resolution.multi = resolution.multi or attr.multi
        current = attr.domain
    resolution.domain = current
    return resolution
