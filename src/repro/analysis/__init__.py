"""Static analysis (compile-time correctness checking).

Kim's paper (Section 2.2) observes that a declarative query model over a
class DAG with nested attributes forces a new compile-time apparatus:
queries must be validated against the aggregation and generalization
hierarchies before an optimizer can pick access paths.  This package is
that apparatus, with two front ends:

``repro.analysis.semantic``
    Type-checks parsed OQL ASTs against a live
    :class:`~repro.core.schema.Schema` and emits structured
    :class:`~repro.analysis.diagnostics.Diagnostic` records instead of
    bare exceptions.  ``Database.check(query)`` exposes it; the query
    pipeline runs it automatically before planning.

``repro.analysis.lint``
    Python-``ast`` lints over the engine's own source: lock-order
    checking against a declared lattice, unreleased-resource detection,
    cross-package privacy, mutable default arguments and bare excepts.
    ``python -m repro.tools.lint src/repro --strict`` is the CI gate.
"""

from .diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    DiagnosticReport,
    SourceSpan,
)
from .lint import LintConfig, Linter, Violation, lint_paths
from .resolve import PathResolution, resolve_path
from .semantic import SemanticAnalyzer

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "SourceSpan",
    "ERROR",
    "WARNING",
    "INFO",
    "PathResolution",
    "resolve_path",
    "SemanticAnalyzer",
    "LintConfig",
    "Linter",
    "Violation",
    "lint_paths",
]
