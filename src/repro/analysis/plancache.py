"""The normalized-plan cache.

Hot queries pay the parse → semantic-analysis → rewrite → plan pipeline
once: plans are cached under the rewrite pass's normalized-AST
fingerprint, so *structurally equal* queries (same canonical form after
constant folding, NOT-pushdown, CNF and commutative ordering) share one
entry regardless of how they were spelled.  A second map keyed on the
raw source text lets a repeated identical query string skip even parsing.

An entry is valid only for the world it was planned in.  Its key
captures:

* the **schema epoch** (``Schema.version``) — any schema evolution
  (attribute add/drop/rename, domain change, hierarchy edit) bumps it,
  and ``Schema.on_change`` eagerly purges the cache;
* the **index epoch** (``IndexManager.epoch``) — creating or dropping an
  index invalidates plans that should (or should no longer) probe it;
* the **extent scale** — a per-class ``log2`` bucket of extent sizes, so
  a plan chosen when a class held 100 objects is thrown away once the
  data has doubled and the scan-vs-probe tradeoff may have flipped;
* the **analysis-facts digest** — contradiction flag and sargable ranges
  the plan was built with (deterministic given query + schema, recorded
  for observability via ``SysPlanCache``).

Stale entries found at lookup count as ``query.plan_cache.invalidations``
and are re-planned; capacity evictions are LRU.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional

#: Default maximum number of cached plans.
DEFAULT_CAPACITY = 256


class PlanCacheEntry:
    """One cached plan plus the validity token it was built under."""

    __slots__ = (
        "fingerprint",
        "plan",
        "report",
        "schema_version",
        "index_epoch",
        "extent_scale",
        "facts_digest",
        "hits",
        "created",
        "source",
    )

    def __init__(
        self,
        fingerprint: str,
        plan: Any,
        report: Any,
        schema_version: int,
        index_epoch: int,
        extent_scale: Any,
        facts_digest: str,
        source: Optional[str],
    ) -> None:
        self.fingerprint = fingerprint
        self.plan = plan
        self.report = report
        self.schema_version = schema_version
        self.index_epoch = index_epoch
        self.extent_scale = extent_scale
        self.facts_digest = facts_digest
        self.hits = 0
        self.created = time.perf_counter()
        #: The raw query text this entry was first planned from (None
        #: for hand-built Query objects); display only.
        self.source = source


class PlanCache:
    """LRU cache of planned queries, keyed on normalized-AST fingerprints.

    Thread-safe: the server path plans queries from pool threads while
    schema evolution may purge from another.  The internal mutex is
    leaf-level — no engine lock is ever acquired while holding it.
    """

    def __init__(
        self,
        schema: Any,
        indexes: Any,
        extent_count: Any,
        metrics: Any,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self._schema = schema
        self._indexes = indexes
        self._extent_count = extent_count
        self._plan_cache_mutex = threading.Lock()
        self._entries: "OrderedDict[str, PlanCacheEntry]" = OrderedDict()
        #: Raw query text -> fingerprint, for the skip-the-parser path.
        self._sources: Dict[str, str] = {}
        self.capacity = capacity
        self._m_hits = metrics.counter("query.plan_cache.hits")
        self._m_misses = metrics.counter("query.plan_cache.misses")
        self._m_invalidations = metrics.counter("query.plan_cache.invalidations")
        self._m_evictions = metrics.counter("query.plan_cache.evictions")
        self._m_recosts = metrics.counter("query.cost.plan_cache_recosts")
        self._m_flips = metrics.counter("query.cost.plan_cache_flips")

    # -- validity ----------------------------------------------------------

    def _scale_of(self, scope: Any) -> Any:
        """Extent sizes bucketed by bit length: invalidation on doubling."""
        return tuple(
            int(self._extent_count(cls)).bit_length() for cls in sorted(scope)
        )

    def _valid(self, entry: PlanCacheEntry) -> bool:
        return (
            entry.schema_version == self._schema.version
            and entry.index_epoch == self._indexes.epoch
            and entry.extent_scale == self._scale_of(entry.plan.scope)
        )

    # -- lookup ------------------------------------------------------------

    def get_source(self, source: str) -> Optional[PlanCacheEntry]:
        """Entry for a raw query string — the skip-even-parsing fast path.

        Counts a hit on success but *not* a miss on failure: the caller
        falls through to the fingerprint-level :meth:`get`, which owns
        the hit/miss accounting for the slow path.
        """
        with self._plan_cache_mutex:
            fingerprint = self._sources.get(source)
            if fingerprint is None:
                return None
            entry = self._entries.get(fingerprint)
            if entry is None:
                del self._sources[source]
                return None
            if not self._valid(entry):
                self._drop(fingerprint)
                self._m_invalidations.inc()
                return None
            self._entries.move_to_end(fingerprint)
            entry.hits += 1
            self._m_hits.inc()
            return entry

    def get(
        self, fingerprint: str, source: Optional[str] = None
    ) -> Optional[PlanCacheEntry]:
        """Entry for a normalized-AST fingerprint (post-rewrite path)."""
        with self._plan_cache_mutex:
            entry = self._entries.get(fingerprint)
            if entry is not None and not self._valid(entry):
                self._drop(fingerprint)
                self._m_invalidations.inc()
                entry = None
            if entry is None:
                self._m_misses.inc()
                return None
            self._entries.move_to_end(fingerprint)
            entry.hits += 1
            self._m_hits.inc()
            if source is not None:
                self._sources[source] = fingerprint
            return entry

    def put(
        self,
        fingerprint: str,
        plan: Any,
        report: Any,
        facts_digest: str,
        source: Optional[str] = None,
    ) -> PlanCacheEntry:
        entry = PlanCacheEntry(
            fingerprint,
            plan,
            report,
            self._schema.version,
            self._indexes.epoch,
            self._scale_of(plan.scope),
            facts_digest,
            source,
        )
        with self._plan_cache_mutex:
            self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            if source is not None:
                self._sources[source] = fingerprint
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._purge_sources(evicted)
                self._m_evictions.inc()
        return entry

    # -- invalidation ------------------------------------------------------

    def on_statistics_change(self, replan: Any) -> None:
        """Re-cost every cached plan against a fresh ANALYZE catalog.

        ``replan(entry) -> Plan`` re-runs the planner for one entry under
        the new statistics.  Entries whose winning access path stands get
        the freshly costed plan swapped in (so EXPLAIN shows current
        numbers); entries whose winner *flipped* are dropped — the next
        lookup re-plans and re-caches.  Replanning happens outside the
        cache mutex: the planner reads extent counts and index trees,
        and no engine lock may be acquired under the leaf-level cache
        lock.  Counters land under ``query.cost.plan_cache_recosts`` /
        ``..._flips``.
        """
        with self._plan_cache_mutex:
            snapshot = list(self._entries.items())
        flipped: List[str] = []
        replacements: Dict[str, Any] = {}
        for fingerprint, entry in snapshot:
            try:
                plan = replan(entry)
            except Exception:
                # A query the new world can no longer plan (e.g. a class
                # dropped without a schema bump) just falls out of cache.
                flipped.append(fingerprint)
                continue
            self._m_recosts.inc()
            if plan.access.description == entry.plan.access.description:
                replacements[fingerprint] = plan
            else:
                flipped.append(fingerprint)
        with self._plan_cache_mutex:
            for fingerprint, plan in replacements.items():
                entry = self._entries.get(fingerprint)
                if entry is not None:
                    entry.plan = plan
            for fingerprint in flipped:
                if fingerprint in self._entries:
                    self._drop(fingerprint)
                    self._m_flips.inc()
                    self._m_invalidations.inc()

    def on_schema_change(self, class_name: str) -> None:
        """``Schema.on_change`` listener: evolution purges everything.

        Counting each purged entry as an invalidation keeps the
        ``query.plan_cache.invalidations`` metric honest about how much
        planning work a schema change costs to rebuild.
        """
        with self._plan_cache_mutex:
            purged = len(self._entries)
            self._entries.clear()
            self._sources.clear()
            if purged:
                self._m_invalidations.inc(purged)

    def clear(self) -> None:
        with self._plan_cache_mutex:
            self._entries.clear()
            self._sources.clear()

    def _drop(self, fingerprint: str) -> None:
        self._entries.pop(fingerprint, None)
        self._purge_sources(fingerprint)

    def _purge_sources(self, fingerprint: str) -> None:
        stale = [src for src, fp in self._sources.items() if fp == fingerprint]
        for src in stale:
            del self._sources[src]

    # -- observability -----------------------------------------------------

    def __len__(self) -> int:
        with self._plan_cache_mutex:
            return len(self._entries)

    def rows(self) -> List[Dict[str, Any]]:
        """Row dicts for the ``SysPlanCache`` system view."""
        now = time.perf_counter()
        with self._plan_cache_mutex:
            entries = list(self._entries.values())
        out: List[Dict[str, Any]] = []
        for entry in entries:
            rewrite = getattr(entry.plan, "rewrite", None)
            cost = getattr(entry.plan, "cost", None)
            out.append(
                {
                    "fingerprint": entry.fingerprint,
                    "target": entry.plan.query.target_class,
                    "source": entry.source or "",
                    "access": entry.plan.access.description,
                    "cost_mode": (
                        cost.mode if cost is not None else "heuristic"
                    ),
                    "hits": entry.hits,
                    "schema_epoch": entry.schema_version,
                    "index_epoch": entry.index_epoch,
                    "rules": (
                        ",".join(sorted({name for name, _ in rewrite.rules}))
                        if rewrite is not None
                        else ""
                    ),
                    "age_seconds": now - entry.created,
                }
            )
        return out
