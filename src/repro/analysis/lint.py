"""Custom engine lints over Python source (``python -m repro.tools.lint``).

A database engine's worst bugs are concurrency and resource-lifetime
bugs — exactly the class static analysis catches cheapest.  This module
implements ``ast``-based lints tailored to this codebase, run in CI as a
hard gate over ``src/repro``:

``lock-order``
    Lock/latch acquisitions (``with self._mutex:`` on attributes bound
    to ``threading.Lock``/``RLock``/``Condition``) must respect a
    declared ordering lattice: a nested acquisition must have a strictly
    higher level than every lock already held in the enclosing ``with``
    stack.  Total order on levels -> no wait cycles -> no deadlocks.
``undeclared-lock``
    Every lock-like attribute created in the engine must appear in the
    declared lattice; an undeclared lock is an unreviewed ordering.
``unreleased-resource``
    Calls that open a scope (``tracer.span``, ``histogram.time``,
    ``context.timed``) must be used as ``with`` context expressions, and
    a ``begin()`` result bound to a local must be committed, aborted,
    or escape the function (returned, yielded, stored, passed on).
``private-access``
    No ``_underscore`` attribute or name may be reached across
    ``repro.*`` subpackage boundaries; each subpackage's privates are
    its own.  Some nested packages (see :data:`_NESTED_DOMAINS`, e.g.
    ``repro.query.operators``) are privacy domains of their own,
    distinct from their parent subpackage.
``mutable-default``
    No mutable display (list/dict/set literal or constructor call) as a
    parameter default.
``bare-except``
    No ``except:`` without an exception class.
``operator-materialization``
    Inside ``repro.query.operators`` no ``list(...)`` call may
    materialize a stream: physical operators are pull pipelines, and an
    eager ``list()`` defeats LIMIT early termination.  Intentional
    pipeline breakers carry the pragma.
``wall-clock-duration``
    No ``time.time()`` in engine code: wall clocks step (NTP, DST) and
    make terrible duration measurements.  Durations belong to
    ``time.perf_counter`` via the metrics/tracing instruments
    (``histogram.time()``, ``tracer.span()``, ``WaitProfiler.record``).
    A genuine wall-clock *timestamp* (export ``generated_at``,
    transaction start time) carries the pragma.
``async-blocking-call``
    Inside ``repro.server`` coroutine bodies, no blocking engine call:
    ``*.db.<method>()`` (every ``Database`` entry point may take locks
    and do page I/O), ``open()``, ``.acquire()``, and synchronous
    ``with <lock>:`` all stall the event loop and every connected
    client with it.  Blocking work must be dispatched through the
    session thread pool (``loop.run_in_executor``); the counter-only
    fast path ``*.db.metrics.*`` is exempt.

A violation can be baselined in place with an inline pragma::

    something_flagged()  # lint: ignore[lock-order]

``# lint: ignore`` (no rule list) silences every rule for that line.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Rules known to the linter, in reporting order.
ALL_RULES = (
    "lock-order",
    "undeclared-lock",
    "unreleased-resource",
    "private-access",
    "mutable-default",
    "bare-except",
    "operator-materialization",
    "wall-clock-duration",
    "async-blocking-call",
)

#: Nested packages that are privacy domains of their own: files under
#: them do not share privates with the parent subpackage.
_NESTED_DOMAINS = ("query.operators",)

_PRAGMA_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([a-z\-,\s]+)\])?")

#: threading factory names whose results count as locks/latches.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


class Violation:
    """One lint finding, pointing at file/line/column."""

    __slots__ = ("rule", "path", "line", "col", "message")

    def __init__(self, rule: str, path: str, line: int, col: int, message: str) -> None:
        self.rule = rule
        self.path = path
        self.line = line
        self.col = col
        self.message = message

    def render(self) -> str:
        return "%s:%d:%d: [%s] %s" % (self.path, self.line, self.col, self.rule, self.message)

    def __repr__(self) -> str:
        return "<Violation %s %s:%d>" % (self.rule, self.path, self.line)


class LintConfig:
    """Tunable rule inputs.

    Parameters
    ----------
    lock_lattice:
        Lock attribute name -> level.  Nested acquisition must strictly
        increase the level; discovered locks missing from the lattice
        are ``undeclared-lock`` violations.
    with_required:
        Method names whose call must be a ``with`` context expression.
    acquire_pairs:
        Method name -> releasing method names; an acquire result bound
        to a local must see one of the releases (or escape).
    rules:
        Subset of :data:`ALL_RULES` to run (default: all).
    """

    def __init__(
        self,
        lock_lattice: Optional[Dict[str, int]] = None,
        with_required: Optional[Set[str]] = None,
        acquire_pairs: Optional[Dict[str, Tuple[str, ...]]] = None,
        rules: Optional[Sequence[str]] = None,
    ) -> None:
        self.lock_lattice = dict(lock_lattice or {})
        self.with_required = set(
            with_required if with_required is not None else ("span", "time", "timed")
        )
        self.acquire_pairs = dict(
            acquire_pairs
            if acquire_pairs is not None
            else {"begin": ("commit", "abort", "rollback"), "pin": ("unpin",)}
        )
        self.rules = tuple(rules if rules is not None else ALL_RULES)


#: The declared lattice for the kimdb engine itself.  Order chosen from
#: the call graph: transaction-id allocation is a leaf latch; the lock
#: table's mutex/condition (one underlying lock) sit above it and must
#: never be held while re-entering id allocation.
ENGINE_LOCK_LATTICE: Dict[str, int] = {
    # The server layer (its own privacy domain, like every top-level
    # subpackage) sits entirely below the engine: a session's mutex is
    # held across whole engine calls, so every engine latch must rank
    # strictly above it.  The pool mutex is a client-side leaf that
    # never nests with engine state at all.
    "_session_mutex": 2,
    "_sessions_mutex": 4,
    "_pool_mutex": 6,
    # The plan cache's mutex is a planner-side leaf: nothing else is
    # ever acquired while holding it, and it nests inside no engine
    # latch (lookups happen before scan locks are taken).
    "_plan_cache_mutex": 8,
    # The query-statistics accumulator is likewise a leaf: taken only
    # after a query's pipeline has closed, never around engine calls.
    "_querystats_mutex": 9,
    "_id_mutex": 10,
    # WAL group commit: the serialization mutex around appends ranks
    # below the group-commit condition (the sync leader re-enters
    # _wal_mutex to flush while followers wait on _group_cond, never
    # holding both in the other order), and the MVCC version store's
    # mutex is a leaf taken inside commit after WAL durability.
    "_wal_mutex": 12,
    "_group_cond": 14,
    "_store_mutex": 16,
    "_mutex": 20,
    "_condition": 20,
    # The wait profiler's mutex sits above the lock table: the lock
    # manager records wait events while holding _condition, never the
    # reverse.
    "_waits_mutex": 30,
    # The fault injector's mutex is innermost of all: it guards the undo
    # log of a single proxied file handle and calls nothing that locks.
    "_fault_mutex": 40,
}


def engine_config() -> LintConfig:
    """The configuration CI runs against ``src/repro``."""
    return LintConfig(lock_lattice=ENGINE_LOCK_LATTICE)


def _pragmas(source: str) -> Dict[int, Optional[Set[str]]]:
    """line -> silenced rules (None means all rules) for inline pragmas."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        listed = match.group(1)
        if listed is None:
            out[lineno] = None
        else:
            out[lineno] = {rule.strip() for rule in listed.split(",") if rule.strip()}
    return out


class Linter:
    """Runs the configured rules over modules."""

    def __init__(self, config: Optional[LintConfig] = None) -> None:
        self.config = config or LintConfig()

    # -- entry points ----------------------------------------------------

    def lint_file(self, path: str, package_root: Optional[str] = None) -> List[Violation]:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        subpackage = _subpackage_of(path, package_root)
        return self.lint_source(source, path, subpackage)

    def lint_source(
        self, source: str, path: str = "<string>", subpackage: Optional[str] = None
    ) -> List[Violation]:
        tree = ast.parse(source, filename=path)
        pragmas = _pragmas(source)
        violations: List[Violation] = []
        run = set(self.config.rules)
        if "mutable-default" in run:
            self._check_mutable_defaults(tree, path, violations)
        if "bare-except" in run:
            self._check_bare_except(tree, path, violations)
        if run & {"lock-order", "undeclared-lock"}:
            self._check_lock_order(tree, path, violations, run)
        if "unreleased-resource" in run:
            self._check_resources(tree, path, violations)
        if "private-access" in run and subpackage is not None:
            self._check_privacy(tree, path, subpackage, violations)
        if "operator-materialization" in run and subpackage == "query.operators":
            self._check_operator_materialization(tree, path, violations)
        if "wall-clock-duration" in run:
            self._check_wall_clock(tree, path, violations)
        if "async-blocking-call" in run and subpackage == "server":
            self._check_async_blocking(tree, path, violations)
        return [v for v in violations if not _silenced(v, pragmas)]

    # -- simple rules ----------------------------------------------------

    def _check_mutable_defaults(self, tree, path, out) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set")
                ):
                    out.append(
                        Violation(
                            "mutable-default",
                            path,
                            default.lineno,
                            default.col_offset,
                            "mutable default argument in %s(); use None and "
                            "fill in the body" % node.name,
                        )
                    )

    def _check_bare_except(self, tree, path, out) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                out.append(
                    Violation(
                        "bare-except",
                        path,
                        node.lineno,
                        node.col_offset,
                        "bare except: catches SystemExit/KeyboardInterrupt; "
                        "name an exception class",
                    )
                )

    # -- lock ordering ---------------------------------------------------

    def _check_lock_order(self, tree, path, out, run) -> None:
        lock_attrs = _discover_locks(tree)
        lattice = self.config.lock_lattice
        if "undeclared-lock" in run:
            for name, lineno in sorted(lock_attrs.items(), key=lambda kv: kv[1]):
                if name not in lattice:
                    out.append(
                        Violation(
                            "undeclared-lock",
                            path,
                            lineno,
                            0,
                            "lock attribute %r is not in the declared ordering "
                            "lattice; add it to repro.analysis.lint.ENGINE_LOCK_LATTICE"
                            % name,
                        )
                    )
        if "lock-order" not in run:
            return
        known = set(lattice) | set(lock_attrs)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_lock_scope(node.body, [], known, lattice, path, out)

    def _walk_lock_scope(self, body, held, known, lattice, path, out) -> None:
        """Recursive walk of one function body tracking held lock levels.

        ``held`` is a list of (name, level) acquired by enclosing withs.
        """
        for node in body:
            if isinstance(node, ast.With):
                acquired = []
                for item in node.items:
                    name = _lock_name(item.context_expr, known)
                    if name is None:
                        continue
                    level = lattice.get(name)
                    if level is None:
                        continue  # undeclared-lock already reported
                    for held_name, held_level in held + acquired:
                        if held_level >= level:
                            out.append(
                                Violation(
                                    "lock-order",
                                    path,
                                    item.context_expr.lineno,
                                    item.context_expr.col_offset,
                                    "acquires %r (level %d) while holding %r "
                                    "(level %d); the declared lattice requires "
                                    "strictly increasing levels"
                                    % (name, level, held_name, held_level),
                                )
                            )
                    acquired.append((name, level))
                self._walk_lock_scope(
                    node.body, held + acquired, known, lattice, path, out
                )
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested defs run later, with no locks held.
                self._walk_lock_scope(node.body, [], known, lattice, path, out)
                continue
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._walk_lock_scope([child], held, known, lattice, path, out)
                else:
                    for stmt_list in _stmt_lists(child):
                        self._walk_lock_scope(stmt_list, held, known, lattice, path, out)

    # -- resource balance ------------------------------------------------

    def _check_resources(self, tree, path, out) -> None:
        with_exprs = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.With):
                for item in node.items:
                    with_exprs.add(id(item.context_expr))
                    # ``with a.span() as s, b.time():`` — either shape.
                    if isinstance(item.context_expr, ast.Call):
                        with_exprs.add(id(item.context_expr))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in self.config.with_required:
                continue
            if isinstance(func.value, ast.Name) and func.value.id == "time":
                continue  # stdlib time.time(), not a histogram timer
            if id(node) not in with_exprs:
                out.append(
                    Violation(
                        "unreleased-resource",
                        path,
                        node.lineno,
                        node.col_offset,
                        ".%s() opens a scope; use it as a `with` context "
                        "so it always closes" % func.attr,
                    )
                )
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_acquire_pairs(node, path, out)

    def _check_acquire_pairs(self, fn, path, out) -> None:
        acquires: List[Tuple[str, ast.Call]] = []
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr in self.config.acquire_pairs
            ):
                acquires.append((node.targets[0].id, node.value))
        for name, call in acquires:
            releases = self.config.acquire_pairs[call.func.attr]
            if not self._released_or_escapes(fn, name, releases):
                out.append(
                    Violation(
                        "unreleased-resource",
                        path,
                        call.lineno,
                        call.col_offset,
                        "%r acquired via .%s() is neither released (%s) nor "
                        "escapes this function"
                        % (name, call.func.attr, "/".join(releases)),
                    )
                )

    @staticmethod
    def _released_or_escapes(fn, name: str, releases: Tuple[str, ...]) -> bool:
        for node in ast.walk(fn):
            # txn.commit() / txn.abort()
            if (
                isinstance(node, ast.Attribute)
                and node.attr in releases
                and isinstance(node.value, ast.Name)
                and node.value.id == name
            ):
                return True
            # return txn / yield txn — ownership moves to the caller
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None and name in _names_in(node.value):
                    return True
            # self.current = txn / txns.append(txn) / fn(txn) — escapes
            if isinstance(node, ast.Assign) and name in _names_in(node.value):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        return True
            if isinstance(node, ast.Call):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if name in _names_in(arg):
                        return True
        return False

    # -- operator streaming discipline -----------------------------------

    def _check_operator_materialization(self, tree, path, out) -> None:
        """Flag ``list(...)`` calls inside the physical-operator package.

        Operators are pull pipelines; an eager ``list()`` drains the
        upstream and defeats LIMIT early termination.  A deliberate
        pipeline breaker is annotated with
        ``# lint: ignore[operator-materialization]``.
        """
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "list"
            ):
                out.append(
                    Violation(
                        "operator-materialization",
                        path,
                        node.lineno,
                        node.col_offset,
                        "list(...) materializes the stream inside a physical "
                        "operator; pull rows lazily, or mark a deliberate "
                        "pipeline breaker with the pragma",
                    )
                )

    # -- clock discipline ------------------------------------------------

    def _check_wall_clock(self, tree, path, out) -> None:
        """Flag ``time.time()`` calls.

        The engine's duration convention is ``time.perf_counter`` (see
        :mod:`repro.obs.export`); wall clocks are only acceptable as
        human-facing timestamps, and those sites carry the pragma.
        """
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "time"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "time"
            ):
                out.append(
                    Violation(
                        "wall-clock-duration",
                        path,
                        node.lineno,
                        node.col_offset,
                        "time.time() is a wall clock; measure durations with "
                        "time.perf_counter via the obs instruments "
                        "(histogram.time(), tracer.span(), WaitProfiler), or "
                        "mark a genuine timestamp with the pragma",
                    )
                )

    # -- event-loop discipline -------------------------------------------

    def _check_async_blocking(self, tree, path, out) -> None:
        """Flag blocking engine calls inside server coroutine bodies.

        The network front end runs one asyncio event loop; every
        ``Database`` entry point may take locks, wait on other
        transactions and do page I/O, so calling one from a coroutine
        stalls *all* connected clients.  The server's contract is that
        blocking work goes through the session thread pool
        (``loop.run_in_executor``); passing a callable there is fine —
        this rule only flags direct *calls* made on the loop itself.
        """
        for node in ast.walk(tree):
            if isinstance(node, ast.AsyncFunctionDef):
                for stmt in node.body:
                    self._scan_coroutine(stmt, path, out)

    def _scan_coroutine(self, node, path, out) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested defs don't run here; a nested coroutine gets its
            # own top-level walk, and a nested sync def is the body the
            # executor runs off-loop.
            return
        if isinstance(node, ast.With):
            for item in node.items:
                name = _lock_name(item.context_expr, set(self.config.lock_lattice))
                if name is not None:
                    out.append(
                        Violation(
                            "async-blocking-call",
                            path,
                            item.context_expr.lineno,
                            item.context_expr.col_offset,
                            "synchronously acquires lock %r in a coroutine; "
                            "a contended lock stalls the event loop — "
                            "dispatch via run_in_executor" % name,
                        )
                    )
        elif isinstance(node, ast.Call):
            blocking = self._blocking_call_description(node)
            if blocking is not None:
                out.append(
                    Violation(
                        "async-blocking-call",
                        path,
                        node.lineno,
                        node.col_offset,
                        "%s in a coroutine blocks the event loop; dispatch "
                        "through the session thread pool "
                        "(loop.run_in_executor)" % blocking,
                    )
                )
        for child in ast.iter_child_nodes(node):
            self._scan_coroutine(child, path, out)

    @staticmethod
    def _blocking_call_description(node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "open() does blocking file I/O"
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr == "acquire":
            return ".acquire() blocks on lock acquisition"
        # ``<anything>.db.<method>(...)`` — a Database entry point.  The
        # metrics registry hangs off db too, but counter bumps never
        # block, so ``*.db.metrics.*`` chains (value.attr != 'db') pass.
        value = func.value
        if isinstance(value, ast.Attribute) and value.attr == "db":
            return "engine call .db.%s()" % func.attr
        if isinstance(value, ast.Name) and value.id == "db":
            return "engine call db.%s()" % func.attr
        return None

    # -- cross-package privacy -------------------------------------------

    def _check_privacy(self, tree, path, subpackage, out) -> None:
        origins: Dict[str, str] = {}  # imported binding -> source subpackage
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                origin = _import_origin(node, subpackage)
                if origin is None:
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    origins[bound] = origin
                    if origin != subpackage and alias.name.startswith("_"):
                        out.append(
                            Violation(
                                "private-access",
                                path,
                                node.lineno,
                                node.col_offset,
                                "imports private name %r from subpackage %r"
                                % (alias.name, origin),
                            )
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    parts = alias.name.split(".")
                    if parts[0] != "repro":
                        continue
                    origin = parts[1] if len(parts) > 2 else ""
                    origins[alias.asname or parts[0]] = origin
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            if not isinstance(node.value, ast.Name):
                continue
            origin = origins.get(node.value.id)
            if origin is not None and origin != subpackage:
                out.append(
                    Violation(
                        "private-access",
                        path,
                        node.lineno,
                        node.col_offset,
                        "accesses private attribute %r of %r imported from "
                        "subpackage %r" % (attr, node.value.id, origin),
                    )
                )


# -- module helpers --------------------------------------------------------


def _silenced(violation: Violation, pragmas: Dict[int, Optional[Set[str]]]) -> bool:
    if violation.line not in pragmas:
        return False
    rules = pragmas[violation.line]
    return rules is None or violation.rule in rules


def _stmt_lists(node) -> Iterable[List[ast.stmt]]:
    for field in ("body", "orelse", "finalbody", "handlers"):
        value = getattr(node, field, None)
        if not value:
            continue
        if field == "handlers":
            for handler in value:
                yield handler.body
        elif isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            yield value


def _discover_locks(tree) -> Dict[str, int]:
    """Attribute/variable names bound to threading lock factories."""
    locks: Dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        factory = None
        if isinstance(func, ast.Attribute) and func.attr in _LOCK_FACTORIES:
            if isinstance(func.value, ast.Name) and func.value.id == "threading":
                factory = func.attr
        elif isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
            factory = func.id
        if factory is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Attribute):
                locks.setdefault(target.attr, node.lineno)
            elif isinstance(target, ast.Name):
                locks.setdefault(target.id, node.lineno)
    return locks


def _lock_name(expr, known: Set[str]) -> Optional[str]:
    """The lock attribute a ``with`` context expression acquires, if any."""
    if isinstance(expr, ast.Attribute) and expr.attr in known:
        return expr.attr
    if isinstance(expr, ast.Name) and expr.id in known:
        return expr.id
    return None


def _names_in(expr) -> Set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _domain_of(parts: Sequence[str]) -> str:
    """Privacy domain for a dotted module path (parts under ``repro``).

    The longest matching nested domain wins; otherwise the first
    component is the domain ('' for repro-root modules).
    """
    dotted = ".".join(parts)
    for domain in _NESTED_DOMAINS:
        if dotted == domain or dotted.startswith(domain + "."):
            return domain
    return parts[0] if parts else ""


def _import_origin(node: ast.ImportFrom, subpackage: str) -> Optional[str]:
    """Privacy domain a ``from ... import`` pulls from, or None if external.

    Relative imports resolve against the importing file's own domain:
    ``from .`` stays inside it, each extra leading dot climbs one
    package, and the resulting module path maps through
    :func:`_domain_of` (so ``from .operators`` inside ``repro.query``
    lands in the nested ``query.operators`` domain, not ``query``).
    """
    module = node.module or ""
    if node.level == 0:
        if module != "repro" and not module.startswith("repro."):
            return None
        return _domain_of(module.split(".")[1:])
    base = subpackage.split(".") if subpackage else []
    climb = node.level - 1
    if climb:
        base = base[:-climb] if climb < len(base) else []
    parts = base + (module.split(".") if module else [])
    return _domain_of(parts)


def _subpackage_of(path: str, package_root: Optional[str]) -> Optional[str]:
    """Privacy domain of a file under ``repro`` ('' for root modules).

    Normally the first path component; files inside a nested domain
    (:data:`_NESTED_DOMAINS`) get its dotted name instead.
    """
    normalized = path.replace(os.sep, "/")
    marker = "repro/"
    index = normalized.rfind(marker)
    if index == -1:
        return None
    rest = normalized[index + len(marker):]
    dirs = rest.split("/")[:-1]
    return _domain_of(dirs)


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> List[Violation]:
    """Lint files and directories (recursively); returns all violations."""
    linter = Linter(config or engine_config())
    violations: List[Violation] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, _dirnames, filenames in os.walk(path):
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        violations.extend(
                            linter.lint_file(os.path.join(dirpath, filename))
                        )
        else:
            violations.extend(linter.lint_file(path))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations
