"""Shared machinery for kimdb secondary indexes.

The paper's Section 3.2 derives two OODB-specific index kinds from the
two hierarchies of the data model: *class-hierarchy indexes* along the
generalization hierarchy and *nested-attribute indexes* along the
aggregation hierarchy.  All kinds share the B+-tree substrate and a
common probe/maintenance interface defined here.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.obj import ObjectState
from ..core.oid import OID
from ..core.schema import Schema
from ..obs.metrics import MetricsRegistry
from .btree import BTree


class IndexStats:
    """Probe/maintenance counters for one index.

    A view over ``index.<name>.*`` registry metrics; an index registered
    with an :class:`~repro.index.manager.IndexManager` shares the
    database registry, a standalone index gets a private one.
    """

    __slots__ = ("_probes", "_inserts", "_removes", "_recomputes")

    def __init__(
        self, registry: Optional[MetricsRegistry] = None, prefix: str = "index"
    ) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self._probes = registry.counter("%s.probes" % prefix)
        self._inserts = registry.counter("%s.inserts" % prefix)
        self._removes = registry.counter("%s.removes" % prefix)
        self._recomputes = registry.counter("%s.recomputes" % prefix)

    @property
    def probes(self) -> int:
        return self._probes.value

    @probes.setter
    def probes(self, value: int) -> None:
        self._probes.value = value

    @property
    def inserts(self) -> int:
        return self._inserts.value

    @inserts.setter
    def inserts(self, value: int) -> None:
        self._inserts.value = value

    @property
    def removes(self) -> int:
        return self._removes.value

    @removes.setter
    def removes(self, value: int) -> None:
        self._removes.value = value

    @property
    def recomputes(self) -> int:
        return self._recomputes.value

    @recomputes.setter
    def recomputes(self, value: int) -> None:
        self._recomputes.value = value

    def reset(self) -> None:
        self._probes.reset()
        self._inserts.reset()
        self._removes.reset()
        self._recomputes.reset()


class Index:
    """Base class for secondary indexes.

    Subclasses define which classes they *maintain* entries for
    (``maintained_classes``) and which query scopes they can *answer*
    (:meth:`covers`).  Probes return OIDs sorted for determinism.
    """

    kind = "abstract"

    def __init__(
        self,
        name: str,
        schema: Schema,
        target_class: str,
        path: Sequence[str],
        order: int = 64,
    ) -> None:
        self.name = name
        self.schema = schema
        self.target_class = target_class
        self.path: Tuple[str, ...] = tuple(path)
        self.tree = BTree(order=order)
        self.stats = IndexStats(prefix="index.%s" % name)

    def bind_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        """Re-home this index's counters into a shared registry.

        Called by the index manager at registration time, before the
        initial build, so all of a database's indexes report into the
        database-wide registry under ``index.<name>.*``.
        """
        self.stats = IndexStats(registry, prefix="index.%s" % self.name)

    # -- coverage ------------------------------------------------------------

    def maintained_classes(self) -> List[str]:
        """Classes whose instances feed this index."""
        raise NotImplementedError

    def covers(self, target_class: str, path: Sequence[str], scope: Set[str]) -> bool:
        """Can this index answer a predicate on ``path`` over ``scope``?"""
        raise NotImplementedError

    # -- probes ---------------------------------------------------------------

    def _filter(self, entries: Iterable[Tuple[str, OID]], scope: Optional[Set[str]]) -> List[OID]:
        if scope is None:
            return [oid for _cls, oid in entries]
        return [oid for cls, oid in entries if cls in scope]

    def lookup_eq(self, value: Any, scope: Optional[Set[str]] = None) -> List[OID]:
        self.stats._probes.inc()
        return sorted(self._filter(self.tree.search(value), scope))

    def lookup_range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
        scope: Optional[Set[str]] = None,
    ) -> List[OID]:
        self.stats._probes.inc()
        out: List[OID] = []
        for _key, entries in self.tree.range(low, high, include_low, include_high):
            out.extend(self._filter(entries, scope))
        return sorted(set(out))

    def lookup_in(self, values: Iterable[Any], scope: Optional[Set[str]] = None) -> List[OID]:
        self.stats._probes.inc()
        out: List[OID] = []
        for value in values:
            out.extend(self._filter(self.tree.search(value), scope))
        return sorted(set(out))

    # -- maintenance ---------------------------------------------------------

    def on_insert(self, state: ObjectState) -> None:
        raise NotImplementedError

    def on_delete(self, state: ObjectState) -> None:
        raise NotImplementedError

    def on_update(self, old: ObjectState, new: ObjectState) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        self.tree.clear()

    def __len__(self) -> int:
        return len(self.tree)

    def __repr__(self) -> str:
        return "<%s %s on %s.%s (%d entries)>" % (
            type(self).__name__,
            self.name,
            self.target_class,
            ".".join(self.path),
            len(self.tree),
        )


def attribute_keys(state: ObjectState, attr_name: str) -> List[Any]:
    """Index keys contributed by one attribute of one object.

    A single-valued attribute contributes its value (including None so
    ``is null`` style probes work); a set-valued attribute contributes
    each element, and an empty set contributes nothing.
    """
    value = state.values.get(attr_name)
    if isinstance(value, list):
        return list(value)
    return [value]
