"""Shared machinery for kimdb secondary indexes.

The paper's Section 3.2 derives two OODB-specific index kinds from the
two hierarchies of the data model: *class-hierarchy indexes* along the
generalization hierarchy and *nested-attribute indexes* along the
aggregation hierarchy.  All kinds share the B+-tree substrate and a
common probe/maintenance interface defined here.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.obj import ObjectState
from ..core.oid import OID
from ..core.schema import Schema
from .btree import BTree


class IndexStats:
    """Probe/maintenance counters for one index."""

    __slots__ = ("probes", "inserts", "removes", "recomputes")

    def __init__(self) -> None:
        self.probes = 0
        self.inserts = 0
        self.removes = 0
        self.recomputes = 0

    def reset(self) -> None:
        self.probes = 0
        self.inserts = 0
        self.removes = 0
        self.recomputes = 0


class Index:
    """Base class for secondary indexes.

    Subclasses define which classes they *maintain* entries for
    (``maintained_classes``) and which query scopes they can *answer*
    (:meth:`covers`).  Probes return OIDs sorted for determinism.
    """

    kind = "abstract"

    def __init__(
        self,
        name: str,
        schema: Schema,
        target_class: str,
        path: Sequence[str],
        order: int = 64,
    ) -> None:
        self.name = name
        self.schema = schema
        self.target_class = target_class
        self.path: Tuple[str, ...] = tuple(path)
        self.tree = BTree(order=order)
        self.stats = IndexStats()

    # -- coverage ------------------------------------------------------------

    def maintained_classes(self) -> List[str]:
        """Classes whose instances feed this index."""
        raise NotImplementedError

    def covers(self, target_class: str, path: Sequence[str], scope: Set[str]) -> bool:
        """Can this index answer a predicate on ``path`` over ``scope``?"""
        raise NotImplementedError

    # -- probes ---------------------------------------------------------------

    def _filter(self, entries: Iterable[Tuple[str, OID]], scope: Optional[Set[str]]) -> List[OID]:
        if scope is None:
            return [oid for _cls, oid in entries]
        return [oid for cls, oid in entries if cls in scope]

    def lookup_eq(self, value: Any, scope: Optional[Set[str]] = None) -> List[OID]:
        self.stats.probes += 1
        return sorted(self._filter(self.tree.search(value), scope))

    def lookup_range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
        scope: Optional[Set[str]] = None,
    ) -> List[OID]:
        self.stats.probes += 1
        out: List[OID] = []
        for _key, entries in self.tree.range(low, high, include_low, include_high):
            out.extend(self._filter(entries, scope))
        return sorted(set(out))

    def lookup_in(self, values: Iterable[Any], scope: Optional[Set[str]] = None) -> List[OID]:
        self.stats.probes += 1
        out: List[OID] = []
        for value in values:
            out.extend(self._filter(self.tree.search(value), scope))
        return sorted(set(out))

    # -- maintenance ---------------------------------------------------------

    def on_insert(self, state: ObjectState) -> None:
        raise NotImplementedError

    def on_delete(self, state: ObjectState) -> None:
        raise NotImplementedError

    def on_update(self, old: ObjectState, new: ObjectState) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        self.tree.clear()

    def __len__(self) -> int:
        return len(self.tree)

    def __repr__(self) -> str:
        return "<%s %s on %s.%s (%d entries)>" % (
            type(self).__name__,
            self.name,
            self.target_class,
            ".".join(self.path),
            len(self.tree),
        )


def attribute_keys(state: ObjectState, attr_name: str) -> List[Any]:
    """Index keys contributed by one attribute of one object.

    A single-valued attribute contributes its value (including None so
    ``is null`` style probes work); a set-valued attribute contributes
    each element, and an empty set contributes nothing.
    """
    value = state.values.get(attr_name)
    if isinstance(value, list):
        return list(value)
    return [value]
