"""Single-class indexes — the relational technique, kept as the baseline.

"In relational database systems, one index is maintained on an attribute
... of one relation.  This technique, if applied directly to an
object-oriented database, will mean that one index is needed for an
attribute of each class."  Experiment E2 compares a forest of these
against one class-hierarchy index.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from ..core.obj import ObjectState
from ..core.schema import Schema
from ..errors import SchemaError
from .base import Index, attribute_keys


class SingleClassIndex(Index):
    """Index over the *direct* instances of exactly one class."""

    kind = "single-class"

    def __init__(self, name: str, schema: Schema, target_class: str, attribute: str, order: int = 64) -> None:
        if not schema.has_attribute(target_class, attribute):
            raise SchemaError(
                "class %s has no attribute %r to index" % (target_class, attribute)
            )
        super().__init__(name, schema, target_class, (attribute,), order=order)

    @property
    def attribute(self) -> str:
        return self.path[0]

    def maintained_classes(self) -> List[str]:
        return [self.target_class]

    def covers(self, target_class: str, path: Sequence[str], scope: Set[str]) -> bool:
        return (
            tuple(path) == self.path
            and scope == {self.target_class}
        )

    def on_insert(self, state: ObjectState) -> None:
        if state.class_name != self.target_class:
            return
        for key in attribute_keys(state, self.attribute):
            self.tree.insert(key, state.class_name, state.oid)
            self.stats.inserts += 1

    def on_delete(self, state: ObjectState) -> None:
        if state.class_name != self.target_class:
            return
        for key in attribute_keys(state, self.attribute):
            self.tree.remove(key, state.class_name, state.oid)
            self.stats.removes += 1

    def on_update(self, old: ObjectState, new: ObjectState) -> None:
        if old.values.get(self.attribute) == new.values.get(self.attribute) and (
            old.class_name == new.class_name
        ):
            return
        self.on_delete(old)
        self.on_insert(new)
