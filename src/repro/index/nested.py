"""Nested-attribute indexes [BERT89].

"Just as an index on an attribute of a class is useful for evaluating a
query involving a predicate on the attribute, an index on a nested
attribute of a class should be useful for a query involving a predicate
on the attribute."

A nested-attribute index on ``Vehicle.manufacturer.location`` maps the
*terminal* key ("Detroit") directly to the OIDs of the *target* objects
(vehicles), skipping the aggregation walk at query time.  The cost moves
to maintenance: updating an intermediate object (a Company's location)
must fix the keys of every target whose path traverses it.  The index
keeps a dependency map (intermediate OID -> dependent target OIDs) to
make that incremental.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.obj import ObjectState
from ..core.oid import OID
from ..core.schema import Schema
from ..errors import SchemaError
from .base import Index

#: Resolves an OID to the current stored state (or None if deleted).
Deref = Callable[[OID], Optional[ObjectState]]


class NestedAttributeIndex(Index):
    """Index on a path of attributes rooted at a target class hierarchy."""

    kind = "nested-attribute"

    def __init__(
        self,
        name: str,
        schema: Schema,
        target_class: str,
        path: Sequence[str],
        deref: Deref,
        order: int = 64,
    ) -> None:
        if len(path) < 2:
            raise SchemaError(
                "nested index path must have at least two attributes; "
                "use a class-hierarchy index for %r" % (path,)
            )
        self._validate_path(schema, target_class, path)
        super().__init__(name, schema, target_class, path, order=order)
        self._deref = deref
        #: target OID -> keys currently in the tree for it.
        self._keys_by_target: Dict[OID, List[Any]] = {}
        #: intermediate OID -> target OIDs whose path passes through it.
        self._deps: Dict[OID, Set[OID]] = {}
        #: target OID -> intermediates it currently depends on.
        self._deps_by_target: Dict[OID, Set[OID]] = {}

    @staticmethod
    def _validate_path(schema: Schema, target_class: str, path: Sequence[str]) -> None:
        """Check each path step exists and leads through class domains."""
        current = target_class
        for step_no, attr_name in enumerate(path):
            attr = schema.attribute(current, attr_name)  # raises if missing
            is_last = step_no == len(path) - 1
            if not is_last:
                if not schema.has_class(attr.domain):
                    raise SchemaError(
                        "path step %r: domain %r is not a class" % (attr_name, attr.domain)
                    )
                current = attr.domain

    def maintained_classes(self) -> List[str]:
        return self.schema.hierarchy_of(self.target_class)

    def covers(self, target_class: str, path: Sequence[str], scope: Set[str]) -> bool:
        if tuple(path) != self.path:
            return False
        maintained = set(self.maintained_classes())
        return target_class in maintained and scope <= maintained

    # -- path walking ------------------------------------------------------

    def _walk(self, state: ObjectState) -> Tuple[List[Any], Set[OID]]:
        """Evaluate the path from one target: (terminal keys, intermediates).

        Set-valued steps fan out; a broken chain (None or dangling
        reference) contributes no key.  The terminal attribute's value(s)
        become keys even when None — the chain up to it resolved.
        """
        keys: List[Any] = []
        intermediates: Set[OID] = set()
        frontier: List[ObjectState] = [state]
        for step_no, attr_name in enumerate(self.path):
            is_last = step_no == len(self.path) - 1
            next_frontier: List[ObjectState] = []
            for obj in frontier:
                value = obj.values.get(attr_name)
                elements = value if isinstance(value, list) else [value]
                for element in elements:
                    if is_last:
                        keys.append(element.value if isinstance(element, OID) else element)
                        continue
                    if not isinstance(element, OID):
                        continue  # broken chain
                    referenced = self._deref(element)
                    if referenced is None:
                        continue  # dangling reference
                    intermediates.add(element)
                    next_frontier.append(referenced)
            frontier = next_frontier
            if is_last:
                break
        return keys, intermediates

    # -- incremental maintenance ------------------------------------------------

    def _remove_target(self, oid: OID, class_name: str) -> None:
        for key in self._keys_by_target.pop(oid, []):
            self.tree.remove(key, class_name, oid)
            self.stats.removes += 1
        for intermediate in self._deps_by_target.pop(oid, set()):
            dependents = self._deps.get(intermediate)
            if dependents is not None:
                dependents.discard(oid)
                if not dependents:
                    del self._deps[intermediate]

    def _index_target(self, state: ObjectState) -> None:
        keys, intermediates = self._walk(state)
        for key in keys:
            self.tree.insert(key, state.class_name, state.oid)
            self.stats.inserts += 1
        self._keys_by_target[state.oid] = keys
        self._deps_by_target[state.oid] = intermediates
        for intermediate in intermediates:
            self._deps.setdefault(intermediate, set()).add(state.oid)

    def recompute_target(self, oid: OID) -> None:
        """Re-derive keys for one target object from current stored state."""
        self.stats.recomputes += 1
        state = self._deref(oid)
        if state is None:
            return
        self._remove_target(oid, state.class_name)
        self._index_target(state)

    def _is_target(self, class_name: str) -> bool:
        return self.schema.is_subclass(class_name, self.target_class)

    def on_insert(self, state: ObjectState) -> None:
        if self._is_target(state.class_name):
            self._index_target(state)

    def on_delete(self, state: ObjectState) -> None:
        if self._is_target(state.class_name):
            self._remove_target(state.oid, state.class_name)
        # The deleted object may be an intermediate for other targets.
        for target in list(self._deps.get(state.oid, ())):
            self.recompute_target(target)

    def on_update(self, old: ObjectState, new: ObjectState) -> None:
        if self._is_target(new.class_name):
            first_step = self.path[0]
            if (
                old.values.get(first_step) != new.values.get(first_step)
                or old.class_name != new.class_name
                or new.oid not in self._keys_by_target
            ):
                self._remove_target(old.oid, old.class_name)
                self._index_target(new)
        # Intermediate change: any dependent target may have a new key.
        dependents = self._deps.get(new.oid)
        if dependents:
            for target in list(dependents):
                self.recompute_target(target)

    def clear(self) -> None:
        super().clear()
        self._keys_by_target.clear()
        self._deps.clear()
        self._deps_by_target.clear()

    def dependency_count(self) -> int:
        return sum(len(targets) for targets in self._deps.values())
