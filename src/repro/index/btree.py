"""B+-tree substrate for all secondary indexes.

A textbook in-memory B+-tree with linked leaves: logarithmic point
lookups, ordered range scans, and duplicate keys carried as per-key entry
lists.  All kimdb index kinds (single-class, class-hierarchy, nested)
store ``(class_name, oid)`` pairs as their entries; class partitioning is
what makes one class-hierarchy index answer queries against any sub-scope
of the hierarchy (the structure of [KIM89b]).

Keys of mixed Python types are made totally ordered by
:func:`normalize_key`, which prefixes each value with a type rank.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from ..core.oid import OID
from ..errors import KimDBError

#: Maximum number of keys per node before it splits.
DEFAULT_ORDER = 64


def normalize_key(value: Any) -> Tuple[int, Any]:
    """Map an attribute value to a totally-ordered key.

    Ranks: None < booleans < numbers (ints and floats interleaved) <
    strings < bytes < OIDs.  Within the numeric rank, ``1`` and ``1.0``
    compare equal — matching predicate semantics, where ``weight = 7500``
    should find a float-valued 7500.0.
    """
    if value is None:
        return (0, False)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, bytes):
        return (4, value)
    if isinstance(value, OID):
        return (5, value.value)
    raise KimDBError("value %r cannot be used as an index key" % (value,))


Entry = Tuple[str, OID]  # (class name, object id)


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: List[Tuple[int, Any]] = []
        self.values: List[List[Entry]] = []
        self.next: Optional["_Leaf"] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: List[Tuple[int, Any]] = []
        self.children: List[Any] = []


class BTree:
    """B+-tree mapping normalized keys to lists of (class, OID) entries."""

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if order < 4:
            raise KimDBError("B+-tree order must be >= 4")
        self.order = order
        self._root: Any = _Leaf()
        self._size = 0  # number of (key, entry) pairs

    def __len__(self) -> int:
        return self._size

    @property
    def key_count(self) -> int:
        return sum(1 for _ in self.iter_keys())

    # -- search ------------------------------------------------------------

    def _find_leaf(self, key: Tuple[int, Any]) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def search(self, raw_key: Any) -> List[Entry]:
        """All entries for one key (empty list when absent)."""
        key = normalize_key(raw_key)
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Tuple[Any, List[Entry]]]:
        """Entries with low <= key <= high (bounds optional/exclusive).

        ``None`` bounds are open.  Keys come back in their original value
        form is not preserved — the normalized payload (rank stripped) is
        yielded, which equals the inserted value for all supported types
        except OIDs (yielded as integer values).
        """
        if low is None:
            leaf = self._leftmost_leaf()
            idx = 0
            low_key = None
        else:
            low_key = normalize_key(low)
            leaf = self._find_leaf(low_key)
            idx = bisect.bisect_left(leaf.keys, low_key)
        high_key = normalize_key(high) if high is not None else None
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if low_key is not None and not include_low and key == low_key:
                    idx += 1
                    continue
                if high_key is not None:
                    if key > high_key or (key == high_key and not include_high):
                        return
                yield key[1], list(leaf.values[idx])
                idx += 1
            leaf = leaf.next
            idx = 0

    def iter_keys(self) -> Iterator[Any]:
        for key, _entries in self.range():
            yield key

    def iter_entries(self) -> Iterator[Tuple[Any, Entry]]:
        for key, entries in self.range():
            for entry in entries:
                yield key, entry

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    # -- mutation -----------------------------------------------------------

    def insert(self, raw_key: Any, class_name: str, oid: OID) -> None:
        """Add one entry under a key (duplicates per key allowed)."""
        key = normalize_key(raw_key)
        split = self._insert(self._root, key, (class_name, oid))
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert(self, node: Any, key, entry: Entry):
        if isinstance(node, _Leaf):
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx].append(entry)
            else:
                node.keys.insert(idx, key)
                node.values.insert(idx, [entry])
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, entry)
        if split is not None:
            sep, right = split
            node.keys.insert(idx, sep)
            node.children.insert(idx + 1, right)
            if len(node.keys) > self.order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    def remove(self, raw_key: Any, class_name: str, oid: OID) -> bool:
        """Remove one entry; returns False when it was not present.

        Underfull nodes are tolerated (no rebalancing): deletions leave
        the tree valid for search, and heavy churn is handled by periodic
        rebuild in the index manager.  Empty keys are dropped from leaves.
        """
        key = normalize_key(raw_key)
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        entries = leaf.values[idx]
        try:
            entries.remove((class_name, oid))
        except ValueError:
            return False
        if not entries:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
        self._size -= 1
        return True

    def clear(self) -> None:
        self._root = _Leaf()
        self._size = 0

    # -- estimation ------------------------------------------------------------

    def min_key(self) -> Optional[Any]:
        leaf = self._leftmost_leaf()
        while leaf is not None and not leaf.keys:
            leaf = leaf.next
        return leaf.keys[0][1] if leaf is not None and leaf.keys else None

    def max_key(self) -> Optional[Any]:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[-1]
        # The rightmost leaf can be empty after deletions; fall back to a
        # linked-leaf walk tracking the last non-empty leaf.
        if node.keys:
            return node.keys[-1][1]
        leaf = self._leftmost_leaf()
        last = None
        while leaf is not None:
            if leaf.keys:
                last = leaf.keys[-1][1]
            leaf = leaf.next
        return last

    def estimate_range(self, low: Any = None, high: Any = None) -> int:
        """Estimated entry count in [low, high] by linear interpolation.

        System-R-style uniformity assumption over the key span for
        numeric keys; non-numeric keys (or an empty tree) fall back to a
        1/3 magic fraction.  Never costs more than two root-to-leaf
        walks.
        """
        total = self._size
        if total == 0:
            return 0
        lo_key, hi_key = self.min_key(), self.max_key()
        numeric = all(
            isinstance(k, (int, float)) and not isinstance(k, bool)
            for k in (lo_key, hi_key)
        )
        if not numeric or lo_key is None or hi_key is None or hi_key <= lo_key:
            return max(1, total // 3)
        span = float(hi_key - lo_key)
        lo = lo_key if low is None or not isinstance(low, (int, float)) else max(low, lo_key)
        hi = hi_key if high is None or not isinstance(high, (int, float)) else min(high, hi_key)
        if hi < lo:
            return 0
        fraction = (hi - lo) / span
        return max(1, int(total * min(1.0, max(0.0, fraction))))

    # -- introspection ----------------------------------------------------------

    def depth(self) -> int:
        node, levels = self._root, 1
        while isinstance(node, _Internal):
            node = node.children[0]
            levels += 1
        return levels

    def check_invariants(self) -> None:
        """Validate ordering and linkage; used by property-based tests."""
        previous_key = None
        leaf: Optional[_Leaf] = self._leftmost_leaf()
        counted = 0
        while leaf is not None:
            for idx, key in enumerate(leaf.keys):
                if previous_key is not None and key <= previous_key:
                    raise KimDBError("B+-tree keys out of order")
                if not leaf.values[idx]:
                    raise KimDBError("B+-tree leaf holds an empty entry list")
                counted += len(leaf.values[idx])
                previous_key = key
            leaf = leaf.next
        if counted != self._size:
            raise KimDBError(
                "B+-tree size drift: counted %d, recorded %d" % (counted, self._size)
            )

    def __repr__(self) -> str:
        return "<BTree order=%d size=%d depth=%d>" % (
            self.order,
            self._size,
            self.depth(),
        )
