"""Class-hierarchy indexes [KIM89b, MAIE86b].

"Since the indexed attribute is common to all classes in the class
hierarchy rooted at the user-specified target class, it makes sense to
maintain one index on the attribute for all the classes in the class
hierarchy rooted at the target class."

One B+-tree holds entries for the rooted class *and every subclass*; each
entry is tagged with its class, so a probe against any sub-scope of the
hierarchy filters the entry lists instead of consulting several trees.
The index tracks schema changes: defining a new subclass under the rooted
class automatically widens the maintained set.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from ..core.obj import ObjectState
from ..core.schema import Schema
from ..errors import SchemaError
from .base import Index, attribute_keys


class ClassHierarchyIndex(Index):
    """Index over a class and all its (current and future) subclasses."""

    kind = "class-hierarchy"

    def __init__(self, name: str, schema: Schema, rooted_class: str, attribute: str, order: int = 64) -> None:
        if not schema.has_attribute(rooted_class, attribute):
            raise SchemaError(
                "class %s has no attribute %r to index" % (rooted_class, attribute)
            )
        super().__init__(name, schema, rooted_class, (attribute,), order=order)

    @property
    def attribute(self) -> str:
        return self.path[0]

    def maintained_classes(self) -> List[str]:
        return self.schema.hierarchy_of(self.target_class)

    def covers(self, target_class: str, path: Sequence[str], scope: Set[str]) -> bool:
        if tuple(path) != self.path:
            return False
        maintained = set(self.maintained_classes())
        return target_class in maintained and scope <= maintained

    def _maintains(self, class_name: str) -> bool:
        return self.schema.is_subclass(class_name, self.target_class)

    def on_insert(self, state: ObjectState) -> None:
        if not self._maintains(state.class_name):
            return
        for key in attribute_keys(state, self.attribute):
            self.tree.insert(key, state.class_name, state.oid)
            self.stats.inserts += 1

    def on_delete(self, state: ObjectState) -> None:
        if not self._maintains(state.class_name):
            return
        for key in attribute_keys(state, self.attribute):
            self.tree.remove(key, state.class_name, state.oid)
            self.stats.removes += 1

    def on_update(self, old: ObjectState, new: ObjectState) -> None:
        if (
            old.values.get(self.attribute) == new.values.get(self.attribute)
            and old.class_name == new.class_name
        ):
            return
        self.on_delete(old)
        self.on_insert(new)

    def per_class_counts(self) -> dict:
        """Entry counts per class — the 'key directory' view of [KIM89b]."""
        counts: dict = {}
        for _key, (cls, _oid) in self.tree.iter_entries():
            counts[cls] = counts.get(cls, 0) + 1
        return counts
