"""Secondary indexing: B+-tree, single-class, class-hierarchy, nested."""

from .base import Index, IndexStats, attribute_keys
from .btree import BTree, normalize_key
from .class_hierarchy import ClassHierarchyIndex
from .manager import IndexManager
from .nested import NestedAttributeIndex
from .single_class import SingleClassIndex

__all__ = [
    "Index",
    "IndexStats",
    "attribute_keys",
    "BTree",
    "normalize_key",
    "ClassHierarchyIndex",
    "IndexManager",
    "NestedAttributeIndex",
    "SingleClassIndex",
]
