"""Index manager: registry, maintenance dispatch, and index selection.

The database calls the manager's ``notify_*`` hooks on every object
mutation; the manager fans the change out to affected indexes.  The query
planner calls :meth:`find_index` with a predicate's path and evaluation
scope; the manager returns the cheapest structure that *covers* the
probe, preferring an exact nested index over a class-hierarchy index over
a single-class index.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.obj import ObjectState
from ..core.oid import OID
from ..core.schema import Schema
from ..errors import SchemaError
from ..obs.metrics import MetricsRegistry
from .base import Index
from .class_hierarchy import ClassHierarchyIndex
from .nested import Deref, NestedAttributeIndex
from .single_class import SingleClassIndex

#: Provides all direct instances of a class for index builds.
ScanClass = Callable[[str], Iterable[ObjectState]]


class IndexManager:
    """Owns all secondary indexes of one database."""

    def __init__(
        self,
        schema: Schema,
        scan_class: ScanClass,
        deref: Deref,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.schema = schema
        self._scan_class = scan_class
        self._deref = deref
        self._indexes: Dict[str, Index] = {}
        self._registry = registry
        #: Monotonic index-set epoch: bumped whenever an index is created
        #: or dropped.  Cached plans capture the epoch they were built
        #: under; a mismatch invalidates them (a plan probing a dropped
        #: index, or missing a new one, must be replanned).
        self.epoch = 0

    # -- registry ------------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._indexes)

    def get(self, name: str) -> Index:
        try:
            return self._indexes[name]
        except KeyError:
            raise SchemaError("no index named %r" % (name,)) from None

    def all_indexes(self) -> List[Index]:
        return [self._indexes[name] for name in sorted(self._indexes)]

    def drop_index(self, name: str) -> None:
        if name not in self._indexes:
            raise SchemaError("no index named %r" % (name,))
        del self._indexes[name]
        self.epoch += 1

    def _register(self, index: Index) -> Index:
        if index.name in self._indexes:
            raise SchemaError("index %r already exists" % (index.name,))
        if self._registry is not None:
            index.bind_metrics(self._registry)
        self._indexes[index.name] = index
        self.epoch += 1
        self._build(index)
        return index

    def _build(self, index: Index) -> None:
        index.clear()
        for class_name in index.maintained_classes():
            for state in self._scan_class(class_name):
                index.on_insert(state)

    def rebuild(self, name: str) -> None:
        """Rebuild one index from stored data (after heavy churn)."""
        self._build(self.get(name))

    # -- creation -----------------------------------------------------------

    def create_class_index(
        self, class_name: str, attribute: str, name: Optional[str] = None, order: int = 64
    ) -> SingleClassIndex:
        """Relational-style index over one class's direct instances."""
        index_name = name or "sc_%s_%s" % (class_name, attribute)
        return self._register(
            SingleClassIndex(index_name, self.schema, class_name, attribute, order=order)
        )  # type: ignore[return-value]

    def create_hierarchy_index(
        self, rooted_class: str, attribute: str, name: Optional[str] = None, order: int = 64
    ) -> ClassHierarchyIndex:
        """One index over a class and all its subclasses [KIM89b]."""
        index_name = name or "ch_%s_%s" % (rooted_class, attribute)
        return self._register(
            ClassHierarchyIndex(index_name, self.schema, rooted_class, attribute, order=order)
        )  # type: ignore[return-value]

    def create_nested_index(
        self,
        target_class: str,
        path: Sequence[str],
        name: Optional[str] = None,
        order: int = 64,
    ) -> NestedAttributeIndex:
        """Path index along the aggregation hierarchy [BERT89]."""
        index_name = name or "nx_%s_%s" % (target_class, "_".join(path))
        return self._register(
            NestedAttributeIndex(
                index_name, self.schema, target_class, path, self._deref, order=order
            )
        )  # type: ignore[return-value]

    # -- maintenance dispatch ---------------------------------------------------

    def notify_insert(self, state: ObjectState) -> None:
        for index in self._indexes.values():
            index.on_insert(state)

    def notify_delete(self, state: ObjectState) -> None:
        for index in self._indexes.values():
            index.on_delete(state)

    def notify_update(self, old: ObjectState, new: ObjectState) -> None:
        for index in self._indexes.values():
            index.on_update(old, new)

    # -- selection ------------------------------------------------------------

    _KIND_PREFERENCE = {"nested-attribute": 0, "class-hierarchy": 1, "single-class": 2}

    def find_index(
        self, target_class: str, path: Sequence[str], scope: Set[str]
    ) -> Optional[Index]:
        """Best index covering a probe on ``path`` over ``scope`` classes.

        Preference: nested (answers the whole path at once), then
        class-hierarchy, then single-class; ties broken by name for
        determinism.
        """
        candidates: List[Tuple[int, str, Index]] = []
        for index in self._indexes.values():
            if index.covers(target_class, path, scope):
                rank = self._KIND_PREFERENCE.get(index.kind, 99)
                candidates.append((rank, index.name, index))
        if not candidates:
            return None
        candidates.sort(key=lambda item: (item[0], item[1]))
        return candidates[0][2]

    def indexes_on(self, class_name: str) -> List[Index]:
        """Indexes whose maintained set includes ``class_name``."""
        return [
            index
            for index in self.all_indexes()
            if class_name in index.maintained_classes()
        ]

    def describe(self) -> List[Dict[str, object]]:
        """Catalog view for tools and tests."""
        return [
            {
                "name": index.name,
                "kind": index.kind,
                "class": index.target_class,
                "path": ".".join(index.path),
                "entries": len(index),
            }
            for index in self.all_indexes()
        ]
