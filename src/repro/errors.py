"""Exception hierarchy for kimdb.

Every error raised by the library derives from :class:`KimDBError` so that
applications can catch a single base class.  Subsystems raise the most
specific subclass available; messages always name the offending schema
element or object so failures are diagnosable without a debugger.
"""

from __future__ import annotations


class KimDBError(Exception):
    """Base class for all kimdb errors."""


class SchemaError(KimDBError):
    """Invalid schema definition or schema lookup failure."""


class ClassNotFoundError(SchemaError):
    """A class name was referenced that is not defined in the schema."""


class DuplicateClassError(SchemaError):
    """A class with the same name is already defined."""


class AttributeNotFoundError(SchemaError):
    """An attribute name is not defined (directly or by inheritance)."""


class MethodNotFoundError(SchemaError):
    """No method matches a message anywhere along the class hierarchy."""


class InheritanceConflictError(SchemaError):
    """Multiple-inheritance conflict that cannot be linearized."""


class CycleError(SchemaError):
    """The requested change would make the class graph cyclic."""


class SchemaEvolutionError(SchemaError):
    """A schema change operation violates a schema invariant."""


class TypeCheckError(KimDBError):
    """A value does not conform to the declared domain of an attribute."""


class ObjectNotFoundError(KimDBError):
    """No object with the given OID exists (or it was deleted)."""


class QueryError(KimDBError):
    """Malformed query (syntax or semantic error)."""


class QuerySyntaxError(QueryError):
    """The OQL text could not be parsed."""


class PlanningError(QueryError):
    """The planner could not produce an executable plan."""


class TransactionError(KimDBError):
    """Illegal transaction state transition or usage."""


class DeadlockError(TransactionError):
    """Lock acquisition aborted to break a deadlock."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured timeout."""


class RecoveryError(KimDBError):
    """The write-ahead log is corrupt or replay failed."""


class StorageError(KimDBError):
    """Low-level page/heap failure."""


class PageFullError(StorageError):
    """A record does not fit into any slot of the target page."""


class AuthorizationError(KimDBError):
    """The subject lacks the required privilege."""


class VersionError(KimDBError):
    """Illegal version-derivation or promotion operation."""


class CompositeError(KimDBError):
    """Composite-object constraint violation (e.g. shared exclusive part)."""


class ViewError(KimDBError):
    """Invalid view definition or view usage."""


class RuleError(KimDBError):
    """Invalid rule definition or contradiction during inference."""


class FederationError(KimDBError):
    """Multidatabase mapping or routing failure."""
