"""Exception hierarchy for kimdb.

Every error raised by the library derives from :class:`KimDBError` so that
applications can catch a single base class.  Subsystems raise the most
specific subclass available; messages always name the offending schema
element or object so failures are diagnosable without a debugger.
"""

from __future__ import annotations


class KimDBError(Exception):
    """Base class for all kimdb errors."""


class SchemaError(KimDBError):
    """Invalid schema definition or schema lookup failure."""


class ClassNotFoundError(SchemaError):
    """A class name was referenced that is not defined in the schema."""


class DuplicateClassError(SchemaError):
    """A class with the same name is already defined."""


class AttributeNotFoundError(SchemaError):
    """An attribute name is not defined (directly or by inheritance)."""


class MethodNotFoundError(SchemaError):
    """No method matches a message anywhere along the class hierarchy."""


class InheritanceConflictError(SchemaError):
    """Multiple-inheritance conflict that cannot be linearized."""


class CycleError(SchemaError):
    """The requested change would make the class graph cyclic."""


class SchemaEvolutionError(SchemaError):
    """A schema change operation violates a schema invariant."""


class TypeCheckError(KimDBError):
    """A value does not conform to the declared domain of an attribute."""


class ObjectNotFoundError(KimDBError):
    """No object with the given OID exists (or it was deleted)."""


class QueryError(KimDBError):
    """Malformed query (syntax or semantic error)."""


def caret_snippet(source, pos, width=1):
    """Render the offending line of ``source`` with a caret underneath.

    ``pos`` is a character offset into ``source``; ``width`` is how many
    characters the caret run should cover (at least one).  Used by both
    the parser's syntax errors and the semantic analyzer's diagnostics so
    every compile-time message points at its source text the same way.
    """
    line_start = source.rfind("\n", 0, pos) + 1
    line_end = source.find("\n", pos)
    if line_end == -1:
        line_end = len(source)
    column = pos - line_start
    line = source[line_start:line_end]
    carets = "^" * max(1, min(width, len(line) - column if line else 1))
    return "%s\n%s%s" % (line, " " * column, carets)


def source_position(source, pos):
    """(line, column) of a character offset, both 1-based."""
    line = source.count("\n", 0, pos) + 1
    column = pos - (source.rfind("\n", 0, pos) + 1) + 1
    return line, column


class QuerySyntaxError(QueryError):
    """The OQL text could not be parsed.

    When the parser knows where the problem is it passes ``source`` and
    ``pos``; the rendered message then carries line/column information
    and a caret line pointing at the offending token.
    """

    def __init__(self, message, source=None, pos=None, width=1):
        self.pos = pos
        self.source = source
        self.line = None
        self.column = None
        if source is not None and pos is not None:
            self.line, self.column = source_position(source, pos)
            message = "%s (line %d, column %d)\n%s" % (
                message,
                self.line,
                self.column,
                caret_snippet(source, pos, width),
            )
        super().__init__(message)


class SemanticError(QueryError):
    """A query failed semantic analysis against the schema.

    Carries the full list of :class:`~repro.analysis.diagnostics.Diagnostic`
    records so callers can inspect individual findings (code, severity,
    source span) instead of parsing the rendered message.
    """

    def __init__(self, message, diagnostics=(), source=None):
        super().__init__(message)
        self.diagnostics = list(diagnostics)
        #: The original query text, when the error came from analyzing a
        #: parsed string.  Needed to resolve each diagnostic's character
        #: span into line/column/caret — the server serializes those into
        #: the SEMANTIC error payload so remote clients see the same
        #: pointed-at-source message a local caller gets.
        self.source = source


class PlanningError(QueryError):
    """The planner could not produce an executable plan."""


class TransactionError(KimDBError):
    """Illegal transaction state transition or usage."""


class DeadlockError(TransactionError):
    """Lock acquisition aborted to break a deadlock."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured timeout."""


class RecoveryError(KimDBError):
    """The write-ahead log is corrupt or replay failed."""


class StorageError(KimDBError):
    """Low-level page/heap failure."""


class PageFullError(StorageError):
    """A record does not fit into any slot of the target page."""


class PageCorruptError(StorageError):
    """A page's stored CRC does not match its contents (torn/bit-rotted).

    ``page_id`` names the damaged page when the reader knows it; recovery
    uses it to re-image the page from WAL full-page data.
    """

    def __init__(self, message, page_id=None):
        super().__init__(message)
        self.page_id = page_id


class AuthorizationError(KimDBError):
    """The subject lacks the required privilege."""


class VersionError(KimDBError):
    """Illegal version-derivation or promotion operation."""


class CompositeError(KimDBError):
    """Composite-object constraint violation (e.g. shared exclusive part)."""


class ViewError(KimDBError):
    """Invalid view definition or view usage."""


class RuleError(KimDBError):
    """Invalid rule definition or contradiction during inference."""


class FederationError(KimDBError):
    """Multidatabase mapping or routing failure."""
