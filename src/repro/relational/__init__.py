"""Relational baseline engine (tables, selections, joins)."""

from .engine import RelationalEngine, RelationalStats
from .table import Column, Table

__all__ = ["RelationalEngine", "RelationalStats", "Column", "Table"]
