"""Relational engine: scans, selections and joins over tables.

Deliberately conventional: the point of this engine is to be the honest
baseline in the paper's comparisons — "if relational database systems are
used to manage objects for such applications, the applications have to
use joins to express the traversal from one object to other objects"
(experiment E4), and the OO1 relational variant (experiment E9).

Join methods: nested-loop (the worst case), index nested-loop (when the
inner column has an index) and hash join; :meth:`RelationalEngine.join`
picks automatically.  ``rows_examined`` counts work for deterministic
comparisons.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import KimDBError
from .table import Column, Table

Row = Dict[str, Any]
Predicate = Callable[[Row], bool]


class RelationalStats:
    __slots__ = ("rows_examined", "rows_joined", "index_lookups")

    def __init__(self) -> None:
        self.rows_examined = 0
        self.rows_joined = 0
        self.index_lookups = 0

    def reset(self) -> None:
        self.rows_examined = 0
        self.rows_joined = 0
        self.index_lookups = 0


class RelationalEngine:
    """A catalog of tables plus query operators.

    Pass a :class:`~repro.storage.manager.StorageManager` to put tables
    on paged storage (rows decoded per access through a buffer pool),
    matching the storage costs the OODB side pays; without one, tables
    are idealized in-memory dicts.
    """

    def __init__(self, storage=None) -> None:
        self._tables: Dict[str, Table] = {}
        self.storage = storage
        self.stats = RelationalStats()

    # -- DDL ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Iterable,
        primary_key: Optional[str] = None,
    ) -> Table:
        """Create a table; columns are Column objects or (name, type) pairs."""
        if name in self._tables:
            raise KimDBError("table %r already exists" % (name,))
        column_objects = []
        for column in columns:
            if isinstance(column, Column):
                column_objects.append(column)
            elif isinstance(column, str):
                column_objects.append(Column(column))
            else:
                column_objects.append(Column(*column))
        table = Table(name, column_objects, primary_key, store=self.storage)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise KimDBError("no table named %r" % (name,))
        del self._tables[name]

    def table(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            raise KimDBError("no table named %r" % (name,))
        return table

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    # -- DML (thin delegation) ----------------------------------------------------

    def insert(self, table_name: str, row: Row) -> int:
        return self.table(table_name).insert(row)

    def insert_many(self, table_name: str, rows: Iterable[Row]) -> int:
        table = self.table(table_name)
        count = 0
        for row in rows:
            table.insert(row)
            count += 1
        return count

    # -- operators -------------------------------------------------------------------

    def scan(self, table_name: str) -> Iterator[Row]:
        for _row_id, row in self.table(table_name).scan():
            self.stats.rows_examined += 1
            yield row

    def select(self, table_name: str, predicate: Predicate) -> List[Row]:
        return [row for row in self.scan(table_name) if predicate(row)]

    def select_eq(self, table_name: str, column: str, value: Any) -> List[Row]:
        """Equality selection, using an index when one exists."""
        table = self.table(table_name)
        if table.has_index(column):
            self.stats.index_lookups += 1
            return table.index_lookup(column, value)
        if table.primary_key == column:
            self.stats.index_lookups += 1
            row = table.by_primary_key(value)
            return [row] if row is not None else []
        return [row for row in self.scan(table_name) if row.get(column) == value]

    @staticmethod
    def project(rows: Iterable[Row], columns: List[str]) -> List[Row]:
        return [{c: row.get(c) for c in columns} for row in rows]

    # -- joins -------------------------------------------------------------------------

    @staticmethod
    def _merge(left: Row, right: Row, right_prefix: str) -> Row:
        merged = dict(left)
        for key, value in right.items():
            if key in merged:
                merged["%s.%s" % (right_prefix, key)] = value
            else:
                merged[key] = value
        return merged

    def nested_loop_join(
        self,
        left_rows: Iterable[Row],
        left_col: str,
        right_table: str,
        right_col: str,
    ) -> List[Row]:
        """The O(n*m) baseline join."""
        right_all = list(self.scan(right_table))
        out = []
        for left in left_rows:
            self.stats.rows_examined += 1
            for right in right_all:
                self.stats.rows_examined += 1
                if left.get(left_col) == right.get(right_col) and left.get(left_col) is not None:
                    out.append(self._merge(left, right, right_table))
                    self.stats.rows_joined += 1
        return out

    def index_join(
        self,
        left_rows: Iterable[Row],
        left_col: str,
        right_table: str,
        right_col: str,
    ) -> List[Row]:
        """Index nested-loop join: probe the inner index per outer row."""
        table = self.table(right_table)
        use_pk = table.primary_key == right_col
        if not use_pk and not table.has_index(right_col):
            raise KimDBError(
                "index join requires an index on %s.%s" % (right_table, right_col)
            )
        out = []
        for left in left_rows:
            self.stats.rows_examined += 1
            key = left.get(left_col)
            if key is None:
                continue
            self.stats.index_lookups += 1
            if use_pk:
                row = table.by_primary_key(key)
                matches = [row] if row is not None else []
            else:
                matches = table.index_lookup(right_col, key)
            for right in matches:
                out.append(self._merge(left, right, right_table))
                self.stats.rows_joined += 1
        return out

    def hash_join(
        self,
        left_rows: Iterable[Row],
        left_col: str,
        right_table: str,
        right_col: str,
    ) -> List[Row]:
        """Build a hash table on the inner, probe with the outer."""
        buckets: Dict[Any, List[Row]] = {}
        for right in self.scan(right_table):
            buckets.setdefault(right.get(right_col), []).append(right)
        out = []
        for left in left_rows:
            self.stats.rows_examined += 1
            key = left.get(left_col)
            if key is None:
                continue
            for right in buckets.get(key, ()):
                out.append(self._merge(left, right, right_table))
                self.stats.rows_joined += 1
        return out

    def join(
        self,
        left_rows: Iterable[Row],
        left_col: str,
        right_table: str,
        right_col: str,
    ) -> List[Row]:
        """Pick the cheapest available join method (index > hash)."""
        table = self.table(right_table)
        if table.primary_key == right_col or table.has_index(right_col):
            return self.index_join(left_rows, left_col, right_table, right_col)
        return self.hash_join(left_rows, left_col, right_table, right_col)

    def __repr__(self) -> str:
        return "<RelationalEngine %d tables>" % len(self._tables)
