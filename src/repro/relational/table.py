"""Relational tables — the fourth-generation baseline.

The paper argues OODB advantages *relative to* relational systems, so the
reproduction needs an honest relational substrate: typed tables with
primary keys, secondary B+-tree indexes and update-in-place rows.  The
engine on top (:mod:`repro.relational.engine`) supplies scans and joins.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import KimDBError
from ..index.btree import BTree
from ..core.oid import OID

#: Column types understood by the relational layer.
COLUMN_TYPES = ("int", "float", "str", "bool", "any")

_CHECKS: Dict[str, Callable[[Any], bool]] = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
    "any": lambda v: True,
}


class Column:
    __slots__ = ("name", "type", "nullable")

    def __init__(self, name: str, type: str = "any", nullable: bool = True) -> None:
        if type not in COLUMN_TYPES:
            raise KimDBError("unknown column type %r" % (type,))
        self.name = name
        self.type = type
        self.nullable = nullable

    def check(self, value: Any) -> None:
        if value is None:
            if not self.nullable:
                raise KimDBError("column %r is NOT NULL" % (self.name,))
            return
        if not _CHECKS[self.type](value):
            raise KimDBError(
                "column %r expects %s, got %r" % (self.name, self.type, value)
            )

    def __repr__(self) -> str:
        return "<Column %s %s%s>" % (
            self.name,
            self.type,
            "" if self.nullable else " NOT NULL",
        )


class Table:
    """Rows keyed by a synthetic row id; optional unique primary key.

    Two storage modes:

    * **memory** (default) — rows live in a dict; the idealized baseline.
    * **paged** — rows are serialized onto slotted pages through a
      :class:`~repro.storage.manager.StorageManager` heap, so every row
      access pays decode + buffer-manager costs, like a real
      fourth-generation system.  This is the honest comparator for the
      paper's traversal claims (an application never holds direct
      pointers into a relational system's page buffers).
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[str] = None,
        store=None,
    ) -> None:
        self.name = name
        self.columns = list(columns)
        self._by_name = {c.name: c for c in self.columns}
        if len(self._by_name) != len(self.columns):
            raise KimDBError("duplicate column names in table %r" % (name,))
        if primary_key is not None and primary_key not in self._by_name:
            raise KimDBError(
                "primary key %r is not a column of %r" % (primary_key, name)
            )
        self.primary_key = primary_key
        self._store = store
        self._heap = store.heap_for("table:" + name) if store is not None else None
        #: memory mode: row_id -> row dict; paged mode: row_id -> RID.
        self._rows: Dict[int, Any] = {}
        self._next_row_id = 1
        self._pk_index: Dict[Any, int] = {}
        #: column -> secondary BTree (reusing the shared substrate; the
        #: entry "class" slot carries the table name).
        self._indexes: Dict[str, BTree] = {}

    @property
    def paged(self) -> bool:
        return self._heap is not None

    # -- row materialization (paged mode pays decode per access) ---------

    def _materialize(self, stored: Any) -> Dict[str, Any]:
        if self._heap is None:
            return dict(stored)
        from ..storage.serializer import decode_object

        return dict(decode_object(self._heap.read(stored)).values)

    def _persist(self, row_id: int, clean: Dict[str, Any], old=None):
        if self._heap is None:
            return clean
        from ..core.obj import ObjectState
        from ..core.oid import OID
        from ..storage.serializer import encode_object

        record = encode_object(ObjectState(OID(row_id), self.name, clean))
        if old is None:
            return self._heap.insert(record)
        return self._heap.update(old, record)

    # -- schema ---------------------------------------------------------------

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def has_index(self, column: str) -> bool:
        return column in self._indexes

    def create_index(self, column: str) -> None:
        if column not in self._by_name:
            raise KimDBError("no column %r in table %r" % (column, self.name))
        if column in self._indexes:
            raise KimDBError("index on %s.%s already exists" % (self.name, column))
        tree = BTree()
        for row_id, stored in self._rows.items():
            row = self._materialize(stored)
            tree.insert(row.get(column), self.name, OID(row_id))
        self._indexes[column] = tree

    # -- mutation -----------------------------------------------------------------

    def _check_row(self, row: Dict[str, Any]) -> Dict[str, Any]:
        clean = {}
        for column in self.columns:
            value = row.get(column.name)
            column.check(value)
            clean[column.name] = value
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise KimDBError(
                "unknown columns %s for table %r" % (sorted(unknown), self.name)
            )
        return clean

    def insert(self, row: Dict[str, Any]) -> int:
        clean = self._check_row(row)
        if self.primary_key is not None:
            key = clean.get(self.primary_key)
            if key in self._pk_index:
                raise KimDBError(
                    "duplicate primary key %r in table %r" % (key, self.name)
                )
        row_id = self._next_row_id
        self._next_row_id += 1
        self._rows[row_id] = self._persist(row_id, clean)
        if self.primary_key is not None:
            self._pk_index[clean[self.primary_key]] = row_id
        for column, tree in self._indexes.items():
            tree.insert(clean.get(column), self.name, OID(row_id))
        return row_id

    def update(self, row_id: int, changes: Dict[str, Any]) -> None:
        stored = self._rows.get(row_id)
        if stored is None:
            raise KimDBError("no row %d in table %r" % (row_id, self.name))
        row = self._materialize(stored)
        new_row = dict(row)
        new_row.update(changes)
        clean = self._check_row(new_row)
        if self.primary_key is not None and self.primary_key in changes:
            old_key = row[self.primary_key]
            new_key = clean[self.primary_key]
            if new_key != old_key and new_key in self._pk_index:
                raise KimDBError(
                    "duplicate primary key %r in table %r" % (new_key, self.name)
                )
            del self._pk_index[old_key]
            self._pk_index[new_key] = row_id
        for column, tree in self._indexes.items():
            if column in changes and clean.get(column) != row.get(column):
                tree.remove(row.get(column), self.name, OID(row_id))
                tree.insert(clean.get(column), self.name, OID(row_id))
        if self.paged:
            self._rows[row_id] = self._persist(row_id, clean, old=stored)
        else:
            self._rows[row_id] = clean

    def delete(self, row_id: int) -> None:
        stored = self._rows.pop(row_id, None)
        if stored is None:
            raise KimDBError("no row %d in table %r" % (row_id, self.name))
        row = self._materialize(stored)
        if self.paged:
            self._heap.delete(stored)
        if self.primary_key is not None:
            self._pk_index.pop(row[self.primary_key], None)
        for column, tree in self._indexes.items():
            tree.remove(row.get(column), self.name, OID(row_id))

    # -- access ------------------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        for row_id in sorted(self._rows):
            yield row_id, self._materialize(self._rows[row_id])

    def get(self, row_id: int) -> Dict[str, Any]:
        stored = self._rows.get(row_id)
        if stored is None:
            raise KimDBError("no row %d in table %r" % (row_id, self.name))
        return self._materialize(stored)

    def by_primary_key(self, key: Any) -> Optional[Dict[str, Any]]:
        if self.primary_key is None:
            raise KimDBError("table %r has no primary key" % (self.name,))
        row_id = self._pk_index.get(key)
        if row_id is None:
            return None
        return self._materialize(self._rows[row_id])

    def index_lookup(self, column: str, value: Any) -> List[Dict[str, Any]]:
        tree = self._indexes.get(column)
        if tree is None:
            raise KimDBError("no index on %s.%s" % (self.name, column))
        out = []
        for _table, row_oid in tree.search(value):
            stored = self._rows.get(row_oid.value)
            if stored is not None:
                out.append(self._materialize(stored))
        return out

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return "<Table %s: %d rows, %d columns>" % (
            self.name,
            len(self._rows),
            len(self.columns),
        )
