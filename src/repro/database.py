"""The kimdb database facade.

Ties the subsystems together into the paper's definition of an OODB: "a
persistent and sharable repository and manager of an object-oriented
database" supporting the core data model *and* all conventional database
features with object-consistent semantics — declarative queries with
optimization, secondary indexing, transactions with locking and WAL
recovery, authorization, schema evolution, versions, composite objects
and views (each implemented in its own subpackage and reachable from
here).
"""

from __future__ import annotations

import contextlib
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from .analysis.diagnostics import DiagnosticReport
from .analysis.plancache import PlanCache
from .analysis.rewrite import RewriteResult, rewrite_query
from .analysis.semantic import SemanticAnalyzer
from .core.attribute import AttributeDef
from .core.klass import ClassDef
from .core.method import MethodDef
from .core.obj import ObjectHandle, ObjectState
from .core.oid import OID, OIDGenerator
from .core.schema import Schema
from .errors import ObjectNotFoundError, QueryError, SemanticError, TransactionError
from .index.manager import IndexManager
from .obs.explain import ExplainResult, operator_tree
from .obs.metrics import MetricsRegistry
from .obs.querystats import QueryStats
from .obs.tracing import Tracer
from .obs.waits import WaitProfiler
from .query.ast import AdtPredicate, Query
from .query.executor import Executor, ResultSet
from .query.parser import parse_query
from .query.planner import EmptyScan, Plan, Planner
from .storage.clustering import ClusteringPolicy, NoClustering
from .storage.manager import StorageManager
from .txn.locks import (
    DATABASE,
    IS,
    IX,
    S,
    X,
    LockManager,
    class_resource,
    object_resource,
)
from .txn.long_tx import PrivateWorkspace
from .txn.recovery import checkpoint as _checkpoint
from .txn.recovery import recover as _recover
from .txn.transaction import Transaction, TransactionManager
from .txn.wal import WriteAheadLog
from .versions.store import SnapshotView, VersionStore


class DatabaseStats:
    """Aggregated counters used by tests and experiments."""

    def __init__(self, db: "Database") -> None:
        self._db = db

    def snapshot(self) -> Dict[str, Any]:
        storage = self._db.storage
        return {
            "objects": len(storage.directory),
            "buffer": storage.buffer.stats.snapshot(),
            "pager": storage.pager.stats.snapshot(),
            "locks": {
                "acquisitions": self._db.locks.stats.acquisitions,
                "blocks": self._db.locks.stats.blocks,
                "deadlocks": self._db.locks.stats.deadlocks,
            },
            "transactions": {
                "committed": self._db.txns.committed_count,
                "aborted": self._db.txns.aborted_count,
            },
            "metrics": self._db.metrics.snapshot(),
            "querystats": self._db.query_stats.rows(),
        }

    def reset_io(self) -> None:
        self._db.storage.buffer.stats.reset()
        self._db.storage.pager.stats.reset()
        self._db.locks.stats.reset()


class QueryStream:
    """A closable handle over a streaming query (:meth:`Database.select_iter`).

    Pulls the Volcano pipeline lazily and applies per-object
    authorization/MAC filtering as rows stream past.  ``close()`` is the
    whole point of the class: it deterministically closes every pipeline
    operator (stopping the underlying scans) and, when the stream opened
    its own read transaction to hold scan locks, commits it so those
    locks are released — an abandoned stream (a disconnected client) can
    never strand locks until garbage collection happens to run.
    """

    def __init__(
        self,
        db: "Database",
        pipeline,
        txn,
        was_view: bool,
        snapshot=None,
        plan=None,
        source=None,
    ) -> None:
        self._db = db
        self._pipeline = pipeline
        #: The prepared plan and query text, kept so close() can fold
        #: the stream's counters into the fingerprint statistics.
        self._plan = plan
        self._source = source
        self._started = time.perf_counter()
        #: The stream's own read transaction (None when the caller's
        #: explicit transaction holds the scan locks instead, or when
        #: the stream reads from an MVCC snapshot and needs no locks).
        self._txn = txn
        self._was_view = was_view
        #: The stream's :class:`~repro.versions.store.SnapshotView`
        #: (None when snapshot reads are off).  Ephemeral snapshots are
        #: closed by :meth:`close`, which moves the version GC horizon.
        self._snapshot = snapshot
        self._rows = pipeline.rows()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def __iter__(self) -> "QueryStream":
        return self

    def _advance(self) -> ObjectState:
        if self._closed:
            raise StopIteration
        for state in self._rows:
            oid = state.oid
            if (
                self._db.authz is not None
                and not self._was_view
                and not self._db.authz.read_allowed(oid)
            ):
                continue
            if self._db.mac is not None and not self._db.mac.read_allowed(oid):
                continue
            return state
        self.close()
        raise StopIteration

    def __next__(self) -> ObjectHandle:
        return ObjectHandle(self._db, self._advance().oid)

    def next_state(self) -> ObjectState:
        """Next visible row as its :class:`ObjectState` (server fetch path).

        Same filtering as iteration, but returns the snapshot-resolved
        state itself instead of a live handle — a handle read would see
        the *current* stored value, not the stream's snapshot.
        """
        return self._advance()

    def close(self) -> None:
        """Close pipeline operators and release stream-held resources.

        Idempotent.  Locks taken under a caller-provided transaction are
        left alone (strict two-phase locking: they belong to that
        transaction until it ends); only the stream's own implicit read
        transaction is finished here, and only an ephemeral snapshot —
        not one bound to the caller's transaction — is closed.
        """
        if self._closed:
            return
        self._closed = True
        self._pipeline.close()
        if self._txn is not None and self._txn.is_active:
            # Read-only by construction; commit just releases its locks.
            self._txn.commit()
        self._db._close_query_snapshot(self._snapshot)
        if self._plan is not None:
            # Elapsed covers open-to-close: for a stream, the client's
            # pull pace *is* the query's latency as the server sees it.
            self._db._record_query_stats(
                self._plan,
                self._pipeline,
                self._source,
                time.perf_counter() - self._started,
            )

    def __enter__(self) -> "QueryStream":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class Database:
    """An object-oriented database.

    Parameters
    ----------
    path:
        Base path for durable databases (``<path>`` holds data pages,
        ``<path>.meta`` the catalog, ``<path>.wal`` the log).  ``None``
        creates an ephemeral in-memory database.
    clustering:
        A :class:`~repro.storage.clustering.ClusteringPolicy`; defaults
        to no clustering.
    use_locks:
        Disable to skip lock acquisition entirely (single-threaded
        benchmarks isolating other costs).
    sync_on_commit:
        fsync the WAL on commit (durable databases only).
    group_commit:
        Batch concurrent commit fsyncs: one WAL sync covers every
        transaction whose commit record it flushed (default on; the
        ``--no-group-commit`` server flag disables it).
    snapshot_reads:
        Run read-only queries against an MVCC begin snapshot instead of
        taking scan locks (default on).  Writers still use strict 2PL.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        page_size: int = 4096,
        buffer_capacity: int = 256,
        clustering: Optional[ClusteringPolicy] = None,
        use_locks: bool = True,
        sync_on_commit: bool = True,
        recover_on_open: bool = True,
        metrics_enabled: bool = True,
        slow_op_threshold: Optional[float] = None,
        group_commit: bool = True,
        snapshot_reads: bool = True,
    ) -> None:
        self.path = path
        #: The database-wide observability registry: every subsystem's
        #: counters (buffer.*, pager.*, wal.*, locks.*, index.*,
        #: query.*) report here; ``db.metrics.snapshot()`` is the one
        #: place to read them all.
        self.metrics = MetricsRegistry(enabled=metrics_enabled)
        self.tracer = Tracer(
            capacity=512, slow_threshold=slow_op_threshold, registry=self.metrics
        )
        #: Wait-event profiler: every stall (lock waits, buffer misses,
        #: page I/O, WAL flushes) lands here, tagged with the waiting
        #: transaction; queryable through the SysWaitEvent system view.
        self.waits = WaitProfiler(registry=self.metrics)
        self.storage = StorageManager(
            path, page_size, buffer_capacity, self.metrics, waits=self.waits
        )
        self.schema = Schema()
        self.locks = LockManager(self.metrics, waits=self.waits)
        self.wal = WriteAheadLog(
            path + ".wal" if path else None,
            sync_on_commit=sync_on_commit,
            registry=self.metrics,
            waits=self.waits,
            tracer=self.tracer,
            group_commit=group_commit,
        )
        # Torn-page protection: the buffer pool logs a durable full-page
        # image into the WAL before every dirty page write-back, so
        # recovery can re-image a page whose write a crash tore.
        if path is not None:
            self.storage.buffer.attach_page_image_log(
                self.wal.log_page_image, self.wal.sync
            )
        #: MVCC before-image store: writers install pre-mutation states
        #: here (keyed by OID + commit timestamp) so snapshot readers can
        #: reconstruct the database as of their begin timestamp without
        #: blocking or being blocked by writers.
        self.version_store = VersionStore(self.metrics)
        #: Snapshot-read knob: when False, read queries fall back to
        #: scan locks (strict 2PL for readers and writers alike).
        self.snapshot_reads = snapshot_reads
        self.txns = TransactionManager(
            self.wal, self.locks, registry=self.metrics,
            version_store=self.version_store,
        )
        self.waits.current_txn = self._current_txn_id
        self.clustering = clustering or NoClustering()
        self.use_locks = use_locks
        self._oids = OIDGenerator()
        self.indexes = IndexManager(
            self.schema, self._scan_coerced, self._deref, self.metrics
        )
        # Imported here, not at module top: sysviews pulls in the multidb
        # and query layers, which import repro.obs — an eager import from
        # the obs package initializer would cycle through storage.buffer.
        from .obs.sysviews import SystemCatalog

        #: System statistics views (SysStat, SysWaitEvent, SysLock, ...),
        #: queryable like any class through the standard pipeline.
        self.syscat = SystemCatalog(self)
        self.planner = Planner(
            self.schema, self.indexes, self._extent_count,
            system_catalog=self.syscat,
            page_size=self.storage.pager.page_size,
        )
        #: Normalized-plan cache: hot queries skip parse/analyze/plan.
        #: Eagerly purged on schema evolution via the schema listener;
        #: index create/drop and extent-size doubling invalidate lazily
        #: through the entry's epoch token.
        self.plan_cache = PlanCache(
            self.schema, self.indexes, self._extent_count, self.metrics
        )
        self.schema.on_change(self.plan_cache.on_schema_change)
        #: Per-query-fingerprint statistics accumulator (SysQueryStat);
        #: recorded at executor close, purged on schema evolution like
        #: the plan cache — stale fingerprints describe a dead world.
        self.query_stats = QueryStats(self.metrics)
        self.schema.on_change(self.query_stats.on_schema_change)
        #: ANALYZE output (:class:`~repro.obs.stats.StatisticsCatalog`):
        #: per-class row counts/sizes and per-index histograms, set by
        #: :meth:`analyze` (or reloaded from the catalog on reopen) and
        #: handed to the planner as inert facts for the cost model.
        self.statistics = None
        # Waits recorded on a request thread inherit its trace context,
        # so SysWaitEvent rows link back to the client's trace id.
        self.waits.current_trace = lambda: self.tracer.current_trace
        #: Per-operator counters of the last *user* query (system-view
        #: queries never overwrite it — observing must not perturb the
        #: observed); served by the SysOperator view.
        self.last_operator_stats: Optional[List[Dict[str, Any]]] = None
        self._executor = Executor(
            self._deref, self._scan_coerced, self.send, self._adt_eval,
            metrics=self.metrics,
        )
        self.stats = DatabaseStats(self)
        self._m_parses = self.metrics.counter("query.parses")
        self._m_checks = self.metrics.counter("query.checks")
        self._m_plans = self.metrics.counter("query.plans")
        self._m_executes = self.metrics.counter("query.executes")
        self._m_query_rows = self.metrics.counter("query.rows")
        self._m_query_seconds = self.metrics.histogram("query.seconds")
        self._m_rewrites = self.metrics.counter("rewrite.queries")
        self._m_rewrite_rules = self.metrics.counter("rewrite.rules_applied")
        self._m_rewrite_contradictions = self.metrics.counter(
            "rewrite.contradictions"
        )
        # Cost-model decision family (benchgate-gated): how often the
        # statistics model vs. the live-count heuristics picked the plan,
        # how many candidates were weighed, and the estimated-vs-actual
        # row totals that expose systematic mis-estimation.
        self._m_cost_stats_decisions = self.metrics.counter(
            "query.cost.decisions_statistics"
        )
        self._m_cost_heuristic_decisions = self.metrics.counter(
            "query.cost.decisions_heuristic"
        )
        self._m_cost_stale_fallbacks = self.metrics.counter(
            "query.cost.stale_fallbacks"
        )
        self._m_cost_candidates = self.metrics.counter("query.cost.candidates")
        self._m_cost_estimated_rows = self.metrics.counter(
            "query.cost.estimated_rows"
        )
        self._m_cost_actual_rows = self.metrics.counter("query.cost.actual_rows")
        #: True while a transaction rollback is replaying compensations;
        #: cascading side-effects (composite delete propagation) are
        #: suppressed — each mutation has its own compensation.
        self._in_rollback = False
        #: Mutation hooks: fn(kind, old_state, new_state); kind in
        #: {"insert", "update", "delete"}.  Pre-hooks may raise to veto.
        self._pre_hooks: List[Callable[[str, Optional[ObjectState], Optional[ObjectState]], None]] = []
        self._post_hooks: List[Callable[[str, Optional[ObjectState], Optional[ObjectState]], None]] = []
        #: Optional subsystem managers, attached by their modules.
        self.authz = None  # set by repro.authz.attach()
        self.mac = None  # set by repro.authz.mandatory.attach_mandatory()
        self.adt = None  # set by repro.adt.attach()
        self.versions = None  # set by repro.versions.attach()
        self.composites = None  # set by repro.composite.attach()
        self.notifications = None  # set by repro.versions.notify.attach()
        self.views = None  # set by repro.views.attach()
        self.roles = None  # set by repro.semantics.attach_roles()
        self.temporal = None  # set by repro.semantics.attach_temporal()
        self.sessions = None  # set by repro.server.Server (SysSession source)
        self._closed = False

        if path is not None:
            self._bootstrap_durable(recover_on_open)

    # ------------------------------------------------------------------
    # bootstrap / lifecycle
    # ------------------------------------------------------------------

    def _bootstrap_durable(self, recover_on_open: bool) -> None:
        extra = self.storage.load_extra_metadata()
        catalog = extra.get("schema")
        if catalog:
            self.schema = Schema.from_dict(catalog)
            # Rewire everything that captured the old schema.
            self.indexes = IndexManager(
                self.schema, self.storage.scan_class, self._deref, self.metrics
            )
            self.planner = Planner(
                self.schema, self.indexes, self._extent_count,
                system_catalog=self.syscat,
                page_size=self.storage.pager.page_size,
            )
            self.plan_cache = PlanCache(
                self.schema, self.indexes, self._extent_count, self.metrics
            )
            self.schema.on_change(self.plan_cache.on_schema_change)
            self.schema.on_change(self.query_stats.on_schema_change)
        stats_payload = extra.get("statistics")
        if stats_payload:
            from .obs.stats import StatisticsCatalog

            self.statistics = StatisticsCatalog.from_dict(stats_payload)
        if recover_on_open:
            _recover(self.wal, self.storage, registry=self.metrics)
        self._oids.advance_past(self.storage.directory.max_oid_value())

    def checkpoint(self) -> None:
        """Flush data pages, persist the catalog, truncate the WAL."""
        extra: Dict[str, Any] = {"schema": self.schema.to_dict()}
        if self.statistics is not None:
            extra["statistics"] = self.statistics.to_dict()
        self.storage.save_metadata(extra)
        _checkpoint(self.wal, self.storage)

    def analyze(self):
        """ANALYZE: collect per-class and per-index statistics.

        Scans every user class extent (row counts, average encoded
        object size) and walks every index (entry/distinct-key counts,
        equi-depth value histograms), installs the resulting
        :class:`~repro.obs.stats.StatisticsCatalog` as ``db.statistics``
        — where ``SysClassStat``/``SysIndexStat`` and the planner's
        ``stats=`` argument read it — and, on a durable database,
        persists it in the storage catalog so it survives close/reopen.
        Returns the catalog.
        """
        # Imported lazily like sysviews: keeps repro.obs importable on
        # its own (the collector itself only needs callables we pass).
        from .obs.stats import collect_statistics
        from .storage.serializer import encode_object

        with self.tracer.span("database.analyze"):
            catalog = collect_statistics(
                self.schema,
                self._scan_coerced,
                self.indexes,
                lambda state: len(encode_object(state)),
                metrics=self.metrics,
            )
        self.statistics = catalog
        # Fresh statistics can flip a cached plan's winning access path:
        # re-cost every cached entry against the new catalog, keeping the
        # ones whose choice stands and dropping the ones that flipped.
        self.plan_cache.on_statistics_change(self._recost_cached_plan)
        if self.path is not None:
            self.storage.save_metadata({"statistics": catalog.to_dict()})
        return catalog

    def _recost_cached_plan(self, entry):
        """Re-plan one cached query against the current statistics."""
        pruned = ()
        if entry.report is not None:
            pruned = tuple(entry.report.pruned_classes)
        facts = None
        rewrite = getattr(entry.plan, "rewrite", None)
        if rewrite is not None:
            facts = rewrite.facts
        plan = self.planner.plan(
            entry.plan.query,
            exclude_classes=pruned,
            facts=facts,
            stats=self.statistics,
            downgrade_hint=self._snapshot_downgrade_hint,
        )
        plan.rewrite = rewrite
        return plan

    def _snapshot_downgrade_hint(self, scope) -> bool:
        """Would the executor downgrade index probes over this scope?

        Mirrors the executor's snapshot rule: under snapshot reads, a
        live version entry for any scope class forces extent scans, so
        the cost model should price index candidates as the scans they
        would become.
        """
        if not self.snapshot_reads:
            return False
        return self.version_store.has_entries(scope)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the database down; safe to call more than once.

        Idempotence matters to the server front end, whose shutdown path
        may race an explicit ``close()`` with the ``with``-statement
        ``__exit__`` — the second call is a no-op instead of flushing
        through already-closed files.
        """
        if self._closed:
            return
        self._closed = True
        self.txns.abort_all_active()
        if self.path is not None:
            self.checkpoint()
        self.storage.close()
        self.wal.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # schema definition (delegates, plus heap/locking awareness)
    # ------------------------------------------------------------------

    def define_class(
        self,
        name: str,
        superclasses: Sequence[str] = ("Object",),
        attributes: Sequence[AttributeDef] = (),
        methods: Sequence[MethodDef] = (),
        abstract: bool = False,
        doc: str = "",
        versionable: bool = False,
    ) -> ClassDef:
        return self.schema.define_class(
            name,
            superclasses=superclasses,
            attributes=attributes,
            methods=methods,
            abstract=abstract,
            doc=doc,
            versionable=versionable,
        )

    # Index creation (delegation kept here so applications rarely need
    # to touch the manager directly).

    def create_class_index(self, class_name: str, attribute: str, name: Optional[str] = None):
        return self.indexes.create_class_index(class_name, attribute, name)

    def create_hierarchy_index(self, rooted_class: str, attribute: str, name: Optional[str] = None):
        return self.indexes.create_hierarchy_index(rooted_class, attribute, name)

    def create_nested_index(self, target_class: str, path: Sequence[str], name: Optional[str] = None):
        return self.indexes.create_nested_index(target_class, path, name)

    # ------------------------------------------------------------------
    # internal plumbing
    # ------------------------------------------------------------------

    def _coerce(self, state: ObjectState) -> ObjectState:
        """Lazy schema-evolution coercion [BANE87].

        Stored records written under an older class definition are
        adjusted on load: missing declared attributes take their default,
        values for dropped attributes disappear.  The stored record is
        untouched (metadata-only evolution, experiment E12)."""
        declared = self.schema.attributes(state.class_name)
        if state.values.keys() == declared.keys():
            return state
        values = {
            name: value for name, value in state.values.items() if name in declared
        }
        for name, attr in declared.items():
            if name not in values:
                values[name] = attr.default_value()
        return ObjectState(state.oid, state.class_name, values)

    def _deref(self, oid: OID) -> Optional[ObjectState]:
        try:
            return self._coerce(self.storage.load(oid))
        except ObjectNotFoundError:
            return None

    def _scan_coerced(self, class_name: str) -> Iterator[ObjectState]:
        for state in self.storage.scan_class(class_name):
            yield self._coerce(state)

    def _deref_class(self, oid: OID) -> Optional[str]:
        entry = self.storage.directory.try_lookup(oid)
        return entry.class_name if entry else None

    def _extent_count(self, class_name: str) -> int:
        return self.storage.count_class(class_name)

    def _current_txn_id(self) -> Optional[int]:
        """Wait-profiler provider: the calling thread's transaction id."""
        current = self.txns.current
        return current.txn_id if current is not None else None

    def _adt_eval(self, predicate: AdtPredicate, state: ObjectState) -> bool:
        if self.adt is None:
            raise TransactionError(
                "ADT predicate %r used but no ADT registry attached" % predicate.name
            )
        return self.adt.evaluate(predicate, state, self._deref)

    @contextlib.contextmanager
    def _auto_txn(self) -> Iterator[Transaction]:
        """Use the current transaction, or wrap the operation in one."""
        current = self.txns.current
        if current is not None:
            yield current
            return
        txn = self.txns.begin()
        try:
            yield txn
        except Exception:
            if txn.is_active:
                txn.abort()
            raise
        else:
            if txn.is_active:
                txn.commit()

    #: Object locks per (txn, class) before escalating to a class lock.
    #: The classic granularity trade: thousands of object locks cost more
    #: than one class lock once fine-grain concurrency no longer pays.
    lock_escalation_threshold: int = 256

    def _lock(self, txn: Transaction, oid: Optional[OID], class_name: str, write: bool) -> None:
        if not self.use_locks:
            return
        top, mid, leaf = (IX, IX, X) if write else (IS, IS, S)
        self.locks.acquire(txn.txn_id, DATABASE, top)
        escalated = txn.escalated_classes.get(class_name)
        if escalated is not None and (not write or escalated == X):
            return  # the class lock already covers this access
        self.locks.acquire(txn.txn_id, class_resource(class_name), mid)
        if oid is None:
            return
        count = txn.object_lock_counts.get(class_name, 0) + 1
        txn.object_lock_counts[class_name] = count
        if count >= self.lock_escalation_threshold:
            mode = X if write else S
            self.locks.acquire(txn.txn_id, class_resource(class_name), mode)
            txn.escalated_classes[class_name] = mode
            return
        self.locks.acquire(txn.txn_id, object_resource(oid), leaf)

    def _lock_class_scan(self, txn: Transaction, class_name: str) -> None:
        if not self.use_locks:
            return
        self.locks.acquire(txn.txn_id, DATABASE, IS)
        self.locks.acquire(txn.txn_id, class_resource(class_name), S)

    def _run_hooks(self, hooks, kind: str, old: Optional[ObjectState], new: Optional[ObjectState]) -> None:
        for hook in hooks:
            hook(kind, old, new)

    def add_pre_hook(self, hook) -> None:
        self._pre_hooks.append(hook)

    def add_post_hook(self, hook) -> None:
        self._post_hooks.append(hook)

    def _check_authz(self, action: str, class_name: str, oid: Optional[OID] = None) -> None:
        if self.authz is not None:
            self.authz.check(action, class_name, oid)
        if self.mac is not None and (oid is not None or action != "read"):
            # Class-level reads (queries) are filtered per object instead
            # of denied outright — no covert existence channel.
            self.mac.check(action, class_name, oid)

    # ------------------------------------------------------------------
    # object lifecycle
    # ------------------------------------------------------------------

    def new(
        self,
        class_name: str,
        values: Optional[Dict[str, Any]] = None,
        near: Optional[OID] = None,
    ) -> ObjectHandle:
        """Create and store a new instance of ``class_name``.

        Missing attributes take their declared defaults; the state is
        validated against the schema (domains, multiplicity, required).
        ``near`` overrides the clustering policy's placement hint.
        """
        self._check_authz("create", class_name)
        values = dict(values or {})
        state_values = self.schema.default_state(class_name)
        state_values.update(values)
        self.schema.validate_state(class_name, state_values, self._deref_class)
        oid = self._oids.next(class_name)
        state = ObjectState(oid, class_name, state_values)
        with self._auto_txn() as txn:
            self._lock(txn, oid, class_name, write=True)
            self._run_hooks(self._pre_hooks, "insert", None, state)
            hint = near
            if hint is None:
                hint = self.clustering.neighbour_for(self.schema, state)
            if self.snapshot_reads:
                # Before-image first (None = "did not exist"), then the
                # storage mutation: a snapshot reader that sees the new
                # stored state must also see the entry that hides it.
                self.version_store.record_before(txn.txn_id, oid, class_name, None)
            self.storage.store_new(state, near=hint)
            self.indexes.notify_insert(state)
            self.wal.log_insert(txn.txn_id, state)
            txn.record_undo(lambda: self._undo_insert(txn, state))
            self._run_hooks(self._post_hooks, "insert", None, state)
        return ObjectHandle(self, oid)

    def _undo_insert(self, txn: Transaction, state: ObjectState) -> None:
        self._in_rollback = True
        try:
            self._undo_insert_body(txn, state)
        finally:
            self._in_rollback = False

    def _undo_insert_body(self, txn: Transaction, state: ObjectState) -> None:
        if self.storage.contains(state.oid):
            self.storage.remove(state.oid)
            self.indexes.notify_delete(state)
            self.wal.log_delete(txn.txn_id, state)
            # Compensations notify post-hooks (composite links, spatial
            # grids, temporal history, ...) but never pre-hooks — a
            # rollback cannot be vetoed.
            self._run_hooks(self._post_hooks, "delete", state, None)

    def get(self, oid: OID) -> ObjectHandle:
        """Handle for an existing object (raises if absent)."""
        self.storage.directory.lookup(oid)
        return ObjectHandle(self, oid)

    def get_state(self, oid: OID) -> ObjectState:
        """Current stored state (read-locked under the active txn)."""
        class_name = self.storage.class_of(oid)
        self._check_authz("read", class_name, oid)
        current = self.txns.current
        if current is not None:
            self._lock(current, oid, class_name, write=False)
        return self._coerce(self.storage.load(oid))

    def read_state(self, oid: OID) -> ObjectState:
        """Transaction-consistent state: the handle-read path.

        Inside a transaction with snapshot reads on, resolves the object
        through the transaction's begin snapshot (opened lazily, like
        the query path) — so ``h["attr"]`` agrees with what the same
        transaction's queries see, including its own uncommitted writes
        (the version store short-circuits the reader's own chain).
        Outside a transaction, or with ``snapshot_reads=False``, this is
        exactly :meth:`get_state` with its locking semantics.
        """
        current = self.txns.current
        if current is None or not self.snapshot_reads:
            return self.get_state(oid)
        if current.snapshot is None:
            current.snapshot = self.version_store.open_snapshot(current.txn_id)
        # The current stored state may already be gone (a concurrent
        # committed delete) while the snapshot still sees the object, so
        # resolve through the version store before deciding existence.
        state = self.version_store.resolve(oid, current.snapshot, self._deref(oid))
        if state is None:
            raise ObjectNotFoundError(
                "object %r is not visible to this transaction's snapshot" % (oid,)
            )
        self._check_authz("read", state.class_name, oid)
        return self._coerce(state)

    def exists(self, oid: OID) -> bool:
        return self.storage.contains(oid)

    def class_of(self, oid: OID) -> str:
        return self.storage.class_of(oid)

    def update(self, oid: OID, changes: Dict[str, Any]) -> ObjectHandle:
        """Apply a partial update to one object."""
        old = self._coerce(self.storage.load(oid))
        self._check_authz("write", old.class_name, oid)
        self.schema.validate_state(
            old.class_name, changes, self._deref_class, partial=True
        )
        new = old.copy()
        new.values.update(changes)
        self._apply_update(old, new)
        return ObjectHandle(self, oid)

    def put_state(self, state: ObjectState) -> None:
        """Replace an object's full state (checkin, migration paths)."""
        old = self.storage.load(state.oid)
        self._check_authz("write", state.class_name, state.oid)
        self.schema.validate_state(state.class_name, state.values, self._deref_class)
        self._apply_update(old, state.copy())

    def _apply_update(self, old: ObjectState, new: ObjectState) -> None:
        with self._auto_txn() as txn:
            self._lock(txn, old.oid, old.class_name, write=True)
            self._run_hooks(self._pre_hooks, "update", old, new)
            if self.snapshot_reads:
                self.version_store.record_before(
                    txn.txn_id, old.oid, old.class_name, old.copy()
                )
            self.storage.overwrite(new)
            self.indexes.notify_update(old, new)
            self.wal.log_update(txn.txn_id, old, new)
            txn.record_undo(lambda: self._undo_update(txn, old, new))
            self._run_hooks(self._post_hooks, "update", old, new)

    def _undo_update(self, txn: Transaction, old: ObjectState, new: ObjectState) -> None:
        self._in_rollback = True
        try:
            self._undo_update_body(txn, old, new)
        finally:
            self._in_rollback = False

    def _undo_update_body(self, txn: Transaction, old: ObjectState, new: ObjectState) -> None:
        self.storage.overwrite(old)
        self.indexes.notify_update(new, old)
        self.wal.log_update(txn.txn_id, new, old)
        self._run_hooks(self._post_hooks, "update", new, old)

    def delete(self, oid: OID) -> None:
        """Delete an object (composite dependents cascade via hooks)."""
        state = self.storage.load(oid)
        self._check_authz("delete", state.class_name, oid)
        with self._auto_txn() as txn:
            self._lock(txn, oid, state.class_name, write=True)
            self._run_hooks(self._pre_hooks, "delete", state, None)
            if self.snapshot_reads:
                self.version_store.record_before(
                    txn.txn_id, oid, state.class_name, state.copy()
                )
            self.storage.remove(oid)
            self.indexes.notify_delete(state)
            self.wal.log_delete(txn.txn_id, state)
            txn.record_undo(lambda: self._undo_delete(txn, state))
            self._run_hooks(self._post_hooks, "delete", state, None)

    def _undo_delete(self, txn: Transaction, state: ObjectState) -> None:
        self._in_rollback = True
        try:
            self._undo_delete_body(txn, state)
        finally:
            self._in_rollback = False

    def _undo_delete_body(self, txn: Transaction, state: ObjectState) -> None:
        if not self.storage.contains(state.oid):
            self.storage.store_new(state)
            self.indexes.notify_insert(state)
            self.wal.log_insert(txn.txn_id, state)
            self._run_hooks(self._post_hooks, "insert", None, state)

    # ------------------------------------------------------------------
    # behavior
    # ------------------------------------------------------------------

    def send(self, oid: OID, selector: str, *args: Any, **kwargs: Any) -> Any:
        """Message passing with late binding (core concept 6)."""
        class_name = self.storage.class_of(oid)
        meth = self.schema.resolve_method(class_name, selector)
        return meth.invoke(ObjectHandle(self, oid), *args, **kwargs)

    # ------------------------------------------------------------------
    # extents and queries
    # ------------------------------------------------------------------

    def instances(self, class_name: str, hierarchy: bool = True) -> Iterator[ObjectHandle]:
        """All instances, physically ordered per class."""
        classes = (
            self.schema.hierarchy_of(class_name) if hierarchy else [class_name]
        )
        current = self.txns.current
        for cls in classes:
            if current is not None:
                self._lock_class_scan(current, cls)
            for state in self.storage.scan_class(cls):
                yield ObjectHandle(self, state.oid)

    def count(self, class_name: str, hierarchy: bool = True) -> int:
        classes = (
            self.schema.hierarchy_of(class_name) if hierarchy else [class_name]
        )
        return sum(self.storage.count_class(cls) for cls in classes)

    def _parse(self, query: Union[str, Query]) -> Query:
        if isinstance(query, str):
            with self.tracer.span("query.parse"):
                query = parse_query(query)
            self._m_parses.inc()
        return query

    def check(self, query: Union[str, Query]) -> DiagnosticReport:
        """Semantic analysis only: type-check without planning or running.

        Returns the full :class:`~repro.analysis.diagnostics.DiagnosticReport`
        (truthy when the query is well-typed).  The same analysis gates
        :meth:`plan`, :meth:`execute` and :meth:`explain` — an ill-typed
        query raises :class:`~repro.errors.SemanticError` before the
        planner sees it.
        """
        source = query if isinstance(query, str) else None
        parsed = self._parse(query)
        if self.syscat.is_system(parsed.target_class):
            return self.syscat.check(parsed, source)
        if self.views is not None:
            parsed = self.views.rewrite(parsed)
        report = self._analyze(parsed, source)
        if report.ok:
            # Static rewrite analysis rides along: REW diagnostics
            # (proven contradictions, eliminated tautologies, derived
            # sargable ranges) are informational, never errors.
            self._rewrite(parsed, report)
        return report

    def _analyze(self, query: Query, source: Optional[str]) -> DiagnosticReport:
        with self.tracer.span("query.check", target=query.target_class):
            report = SemanticAnalyzer(self.schema, self.adt).check(
                query, source=source
            )
        self._m_checks.inc()
        return report

    def _semantic_gate(self, query: Query, source: Optional[str]) -> DiagnosticReport:
        """Fail fast: raise before planning when analysis found errors."""
        report = self._analyze(query, source)
        if not report.ok:
            raise SemanticError(
                report.render(), report.diagnostics, source=report.source
            )
        return report

    def _system_gate(self, query: Query, source: Optional[str]) -> DiagnosticReport:
        """The system-view counterpart of :meth:`_semantic_gate`."""
        with self.tracer.span("query.check", target=query.target_class):
            report = self.syscat.check(query, source)
        self._m_checks.inc()
        if not report.ok:
            raise SemanticError(
                report.render(), report.diagnostics, source=report.source
            )
        return report

    def _rewrite(self, query: Query, report: DiagnosticReport) -> RewriteResult:
        """The static analysis pass between check() and plan().

        Normalizes the WHERE clause and runs interval/type-domain
        analysis; the resulting facts (proven contradiction, sargable
        ranges) feed the planner.  REW diagnostics are appended to the
        semantic report so every downstream consumer (EXPLAIN, the
        server's error payloads, ``check()``) sees them.
        """
        with self.tracer.span("query.rewrite", target=query.target_class):
            rewritten = rewrite_query(
                self.schema, query, exclude_classes=report.pruned_classes
            )
        self._m_rewrites.inc()
        if rewritten.rules:
            self._m_rewrite_rules.inc(len(rewritten.rules))
        if rewritten.facts.contradiction:
            self._m_rewrite_contradictions.inc()
        report.diagnostics.extend(rewritten.diagnostics)
        return rewritten

    def _plan_user_query(
        self,
        query: Query,
        report: DiagnosticReport,
        source: Optional[str],
        cacheable: bool = True,
    ) -> Plan:
        """Rewrite, consult the plan cache, and plan on a miss."""
        rewritten = self._rewrite(query, report)
        if cacheable:
            entry = self.plan_cache.get(rewritten.fingerprint, source=source)
            if entry is not None:
                entry.plan.cached = True
                return entry.plan
        with self.tracer.span("query.plan", target=query.target_class):
            plan = self.planner.plan(
                rewritten.query,
                exclude_classes=report.pruned_classes,
                facts=rewritten.facts,
                stats=self.statistics,
                downgrade_hint=self._snapshot_downgrade_hint,
            )
        plan.rewrite = rewritten
        self._m_plans.inc()
        self._record_cost_decision(plan)
        if cacheable:
            digest = (
                "contradiction"
                if rewritten.facts.contradiction
                else ";".join(
                    ".".join(steps) for steps in sorted(rewritten.facts.ranges)
                )
            )
            self.plan_cache.put(
                rewritten.fingerprint, plan, report, digest, source=source
            )
        return plan

    def _record_cost_decision(self, plan: Plan) -> None:
        """Count one fresh planning decision under ``query.cost.*``."""
        decision = getattr(plan, "cost", None)
        if decision is None:
            self._m_cost_heuristic_decisions.inc()
            return
        if decision.mode == "statistics":
            self._m_cost_stats_decisions.inc()
            self._m_cost_candidates.inc(len(decision.candidates))
        else:
            self._m_cost_heuristic_decisions.inc()
            if decision.stale_reason is not None:
                self._m_cost_stale_fallbacks.inc()

    def plan(self, query: Union[str, Query]) -> Plan:
        source = query if isinstance(query, str) else None
        query = self._parse(query)
        if self.syscat.is_system(query.target_class):
            self._system_gate(query, source)
            self._m_plans.inc()
            return self.planner.plan(query)
        report = self._semantic_gate(query, source)
        return self._plan_user_query(query, report, source)

    def execute(self, query: Union[str, Query]) -> ResultSet:
        """Plan and run a query, returning the full result set object."""
        result, _report = self._execute(query, analyze=False)
        return result

    def _prepare_query(self, query: Union[str, Query]):
        """Shared front half of every query path: parse, authorize the
        *named* target (granting read on a view and not its base class
        is the paper's content-based authorization), rewrite views, run
        the semantic gate, plan, and open the read snapshot (or, when
        snapshot reads are off, take the class scan locks).  Returns
        ``(query, plan, report, was_view, snapshot)``."""
        source = query if isinstance(query, str) else None
        if source is not None:
            # Repeated identical query text: skip even parsing.  Authz,
            # snapshots and scan locks are NOT cached — they are
            # per-caller and per-transaction, so all re-run on every hit.
            entry = self.plan_cache.get_source(source)
            if entry is not None:
                plan = entry.plan
                plan.cached = True
                self._check_authz("read", plan.query.target_class)
                snapshot = self._open_query_snapshot(plan)
                if snapshot is None:
                    self._take_scan_locks(plan)
                return plan.query, plan, entry.report, False, snapshot
        query = self._parse(query)
        if self.syscat.is_system(query.target_class):
            # System views are observability metadata, not stored objects:
            # no authorization named target, no view rewrite, no scan
            # locks (reading statistics must never block on user data).
            report = self._system_gate(query, source)
            with self.tracer.span("query.plan", target=query.target_class):
                plan = self.planner.plan(query)
            self._m_plans.inc()
            return query, plan, report, False, None
        self._check_authz("read", query.target_class)
        was_view = self.views is not None and self.views.is_view(query.target_class)
        if self.views is not None:
            query = self.views.rewrite(query)
        report = self._semantic_gate(query, source)
        # View-targeted queries are planned fresh each time: a view
        # redefinition would not bump the schema epoch the cache keys on.
        plan = self._plan_user_query(query, report, source, cacheable=not was_view)
        snapshot = self._open_query_snapshot(plan)
        if snapshot is None:
            self._take_scan_locks(plan)
        return plan.query, plan, report, was_view, snapshot

    def _take_scan_locks(self, plan: Plan) -> None:
        """Shared scan locks over the plan's scope, under the current txn.

        A plan the rewrite pass proved contradictory executes through
        :class:`~repro.query.operators.leaves.EmptyScanOp` without ever
        touching storage — so it takes no locks at all.  Snapshot reads
        never reach here: a query with a begin snapshot resolves
        visibility through the version store instead of locking (see
        :meth:`_open_query_snapshot`).
        """
        if isinstance(plan.access, EmptyScan):
            return
        current = self.txns.current
        if current is not None:
            for cls in plan.scope:
                self._lock_class_scan(current, cls)

    def _open_query_snapshot(self, plan: Plan) -> Optional[SnapshotView]:
        """The MVCC read path: a snapshot view for this query, or None.

        None (fall back to scan locks) when snapshot reads are disabled
        or the plan is a proven-empty scan that touches nothing anyway.
        Inside a transaction the snapshot is opened once at the first
        read and reused — repeatable reads across the whole transaction;
        outside one the snapshot is ephemeral and the query path closes
        it when the query (or stream) finishes.
        """
        if not self.snapshot_reads or isinstance(plan.access, EmptyScan):
            return None
        current = self.txns.current
        if current is not None:
            if current.snapshot is None:
                current.snapshot = self.version_store.open_snapshot(
                    current.txn_id
                )
            snap = current.snapshot
            ephemeral = False
        else:
            snap = self.version_store.open_snapshot(None)
            ephemeral = True
        return SnapshotView(
            self.version_store,
            snap,
            self._deref,
            self._scan_coerced,
            self._coerce,
            ephemeral=ephemeral,
        )

    def _close_query_snapshot(self, snapshot: Optional[SnapshotView]) -> None:
        """Release an ephemeral query snapshot (moves the GC horizon).

        Transaction-bound snapshots are left alone — the transaction
        manager closes them when the transaction finishes.
        """
        if snapshot is not None and snapshot.ephemeral:
            self.version_store.close_snapshot(snapshot.snapshot)

    def _record_query_stats(
        self,
        prepared_plan: Plan,
        pipeline,
        source: Optional[str],
        seconds: float,
        waits: Optional[Dict[str, float]] = None,
    ) -> None:
        """Fold one finished execution into the fingerprint accumulator.

        Keyed on the rewrite fingerprint the plan cache uses, so
        structurally equal queries share a SysQueryStat row.  System
        views and hand-built plans carry no rewrite and are skipped —
        observing the statistics must not perturb them.
        """
        executed = getattr(pipeline, "plan", prepared_plan)
        rewrite = getattr(executed, "rewrite", None)
        if rewrite is None or pipeline is None:
            return
        self.query_stats.record(
            rewrite.fingerprint,
            executed.query.target_class,
            source,
            seconds,
            pipeline.examined,
            pipeline.matched,
            pipeline.index_probes,
            cache_hit=bool(executed.cached),
            downgraded=executed is not prepared_plan,
            waits=waits,
            epoch_token=(self.schema.version, self.indexes.epoch),
        )
        # Estimated-vs-actual row totals: the ratio of these counters is
        # the cost model's aggregate estimation error (EXPLAIN shows the
        # per-query version via SysQueryStat).
        cost = getattr(prepared_plan, "cost", None)
        if cost is not None and cost.mode == "statistics":
            self._m_cost_estimated_rows.inc(int(round(cost.estimated_rows)))
            self._m_cost_actual_rows.inc(pipeline.matched)

    def _execute(self, query: Union[str, Query], analyze: bool):
        source = query if isinstance(query, str) else None
        with self.tracer.span("query.execute"), self._m_query_seconds.time():
            query, plan, report, was_view, snapshot = self._prepare_query(query)
            is_system = self.syscat.is_system(query.target_class)
            elapsed = 0.0
            waited: Optional[Dict[str, float]] = None
            try:
                with self.tracer.span("query.run", access=plan.access.description):
                    if is_system:
                        result = self._executor.execute_rows(
                            plan,
                            self.syscat.kernel(query.target_class),
                            self.syscat.scan,
                            timed=analyze,
                        )
                    else:
                        with self.waits.capture() as waited:
                            started = time.perf_counter()
                            result = self._executor.execute(
                                plan, timed=analyze, snapshot=snapshot
                            )
                            elapsed = time.perf_counter() - started
            finally:
                self._close_query_snapshot(snapshot)
            if analyze:
                # result.plan, not the prepared plan: snapshot execution
                # may have downgraded an index probe to an extent scan.
                result.analysis = operator_tree(result.plan, result.pipeline)
            if is_system:
                # Statistics rows carry no OIDs: nothing to filter, and
                # querying the observer must not overwrite the observed
                # last-user-query operator stats below.
                self._m_executes.inc()
                self._m_query_rows.inc(len(result))
                return result, report
            self.last_operator_stats = result.operator_stats()
            self._record_query_stats(plan, result.pipeline, source, elapsed, waited)
            if self.authz is not None and not was_view:
                # Per-object content filtering; view queries skip it because
                # the right to the view *is* the content-based authorization.
                result = self.authz.filter_result(result)
            if self.mac is not None:
                # Mandatory filtering applies to every result, views included
                # (discretionary rights never override classification).
                result = self.mac.filter_result(result)
            self._m_executes.inc()
            self._m_query_rows.inc(len(result))
            return result, report

    def explain(self, query: Union[str, Query]) -> ExplainResult:
        """EXPLAIN ANALYZE: run the query, return the annotated plan.

        The result carries the per-node plan tree (rows produced and
        elapsed time read off the live operator counters, index-vs-scan
        access path) as structured data (``.tree``) and as a rendered
        string (``.render()`` / ``str()``) — the Section 2.2 feedback
        loop between the optimizer's estimates and observed work, made
        auditable.
        """
        with self.tracer.span("query.explain"):
            result, report = self._execute(query, analyze=True)
        rewrite = getattr(result.plan, "rewrite", None)
        entry = (
            self.query_stats.get(rewrite.fingerprint)
            if rewrite is not None
            else None
        )
        return ExplainResult(
            result.plan,
            result.analysis,
            result,
            diagnostics=report,
            querystats=entry,
        )

    def explain_analyze(self, query: Union[str, Query]) -> str:
        """Compatibility wrapper: the rendered form of :meth:`explain`."""
        return self.explain(query).render()

    def select(self, query: Union[str, Query]) -> List[Any]:
        """Convenience: run a query and return handles (no projections).

        System-view queries (``db.select("SysWaitEvent where ...")``)
        return the statistics row dicts directly — there are no objects
        behind them to hand out.
        """
        result = self.execute(query)
        if result.system:
            return list(result.rows or [])
        return [ObjectHandle(self, oid) for oid in result.oids]

    def select_iter(self, query: Union[str, Query]) -> QueryStream:
        """Stream query results as handles, one at a time.

        The Volcano pipeline is pulled lazily: nothing is materialized,
        and abandoning the stream (or a LIMIT upstream) stops the
        underlying scan early.  Aggregates and projections need the
        materializing :meth:`execute` path and are rejected here.
        Per-object authorization and mandatory filtering apply as the
        rows stream past, exactly as :meth:`execute` filters its result.

        Returns a :class:`QueryStream` (iterable, context manager).
        Under snapshot reads (the default) the stream runs lock-free
        against its begin snapshot, which is closed — moving the version
        GC horizon — when the stream is exhausted or closed.  With
        ``snapshot_reads=False`` and no transaction active on the
        calling thread, the stream begins its own read transaction so
        the scan locks taken during planning actually protect the scan;
        the transaction is detached from the thread immediately (later
        operations on this thread still autocommit independently) and is
        committed — releasing the scan locks — when the stream is
        exhausted or closed.
        """
        source = query if isinstance(query, str) else None
        implicit: Optional[Transaction] = None
        if self.txns.current is None and not self.snapshot_reads:
            implicit = self.txns.begin()
        snapshot = None
        try:
            prepared, plan, _report, was_view, snapshot = self._prepare_query(query)
            if self.syscat.is_system(prepared.target_class):
                raise QueryError(
                    "select_iter yields object handles; system views have "
                    "none — use execute() or select()"
                )
            if prepared.aggregates:
                raise QueryError("select_iter does not support aggregate queries")
            if prepared.projections is not None:
                raise QueryError("select_iter does not support projection queries")
            pipeline = self._executor.pipeline(plan, snapshot=snapshot)
            pipeline.open()
        except BaseException:
            if implicit is not None and implicit.is_active:
                implicit.abort()
            self._close_query_snapshot(snapshot)
            raise
        finally:
            if implicit is not None:
                self.txns.detach()
        return QueryStream(
            self, pipeline, implicit, was_view, snapshot=snapshot,
            plan=plan, source=source,
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    _UNSET = object()

    def configure_observability(
        self,
        slow_threshold: Any = _UNSET,
        tracing: Optional[bool] = None,
        wait_profiling: Optional[bool] = None,
    ) -> None:
        """Adjust the observability layer at runtime.

        ``slow_threshold`` (seconds, or None to disable the slow log)
        forwards to :meth:`~repro.obs.tracing.Tracer.set_slow_threshold`;
        ``tracing`` and ``wait_profiling`` toggle span recording and the
        wait-event profiler.  Omitted arguments leave settings untouched.
        """
        if slow_threshold is not Database._UNSET:
            self.tracer.set_slow_threshold(slow_threshold)
        if tracing is not None:
            self.tracer.enabled = bool(tracing)
        if wait_profiling is not None:
            self.waits.enabled = bool(wait_profiling)

    # ------------------------------------------------------------------
    # transactions & workspaces
    # ------------------------------------------------------------------

    def transaction(self) -> Transaction:
        """Begin an explicit transaction (usable as a context manager)."""
        return self.txns.begin()

    def workspace(self, name: str = "", pessimistic: bool = False) -> PrivateWorkspace:
        """A private database for long-duration (checkout/checkin) work."""
        return PrivateWorkspace(self, name=name, pessimistic=pessimistic)

    def __repr__(self) -> str:
        return "<Database %s: %d classes, %d objects>" % (
            self.path or "memory",
            sum(1 for _ in self.schema.user_classes()),
            len(self.storage.directory),
        )
