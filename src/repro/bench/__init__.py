"""Benchmark kit: Figure 1 fixture, OO1, workload generators."""

from .oo1 import OO1Data, OO1KimDB, OO1Relational
from .schemas import FIG1_QUERY, build_vehicle_schema, populate_vehicles
from .workloads import (
    build_assembly,
    define_assembly_schema,
    define_document_schema,
    populate_documents,
    selectivity_values,
)

__all__ = [
    "OO1Data",
    "OO1KimDB",
    "OO1Relational",
    "FIG1_QUERY",
    "build_vehicle_schema",
    "populate_vehicles",
    "build_assembly",
    "define_assembly_schema",
    "define_document_schema",
    "populate_documents",
    "selectivity_values",
]
