"""Deterministic workload generators shared by tests and benchmarks."""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..core.attribute import AttributeDef

if TYPE_CHECKING:  # pragma: no cover
    from ..core.oid import OID
    from ..database import Database


def define_assembly_schema(db: "Database") -> None:
    """A CAx-style recursive assembly: composite, dependent sub-parts."""
    db.define_class(
        "Assembly",
        attributes=[
            AttributeDef("label", "String"),
            AttributeDef("mass", "Integer"),
            AttributeDef(
                "subassemblies",
                "Assembly",
                multi=True,
                composite=True,
                exclusive=True,
                dependent=True,
            ),
        ],
        doc="Recursive composite object (assembly of assemblies).",
    )


def build_assembly(
    db: "Database",
    depth: int,
    fanout: int,
    seed: int = 42,
    label_prefix: str = "asm",
) -> "OID":
    """Build a full ``fanout``-ary composite tree of the given depth.

    Children are created *before* their parent (bottom-up) so the
    composite clustering policy can see the references at insert time.
    Returns the root OID.
    """
    rng = random.Random(seed)
    counter = [0]

    def build(level: int) -> "OID":
        children: List["OID"] = []
        if level < depth:
            children = [build(level + 1) for _ in range(fanout)]
        counter[0] += 1
        handle = db.new(
            "Assembly",
            {
                "label": "%s-%d" % (label_prefix, counter[0]),
                "mass": rng.randrange(1, 1000),
                "subassemblies": children,
            },
        )
        return handle.oid

    return build(0)


def define_document_schema(db: "Database") -> None:
    """Multimedia compound documents [WOEL87]: long unstructured data."""
    db.define_class(
        "MediaElement",
        attributes=[
            AttributeDef("kind", "String"),
            AttributeDef("content", "Bytes"),
            AttributeDef("caption", "String"),
        ],
        doc="Image/audio/text payload with long unstructured data.",
    )
    db.define_class(
        "Document",
        attributes=[
            AttributeDef("title", "String", required=True),
            AttributeDef("author", "String"),
            AttributeDef(
                "elements",
                "MediaElement",
                multi=True,
                composite=True,
                exclusive=True,
                dependent=True,
            ),
            AttributeDef("references", "Document", multi=True),
        ],
        doc="Compound document aggregating media elements.",
    )


def populate_documents(
    db: "Database", n_documents: int, elements_per_doc: int = 3, seed: int = 7
) -> List["OID"]:
    rng = random.Random(seed)
    kinds = ("text", "image", "audio")
    documents: List["OID"] = []
    for position in range(n_documents):
        elements = []
        for element_no in range(elements_per_doc):
            payload = bytes(rng.randrange(256) for _ in range(64))
            handle = db.new(
                "MediaElement",
                {
                    "kind": kinds[element_no % len(kinds)],
                    "content": payload,
                    "caption": "element %d of doc %d" % (element_no, position),
                },
            )
            elements.append(handle.oid)
        references = (
            [documents[rng.randrange(len(documents))]] if documents and rng.random() < 0.5 else []
        )
        document = db.new(
            "Document",
            {
                "title": "doc-%d" % position,
                "author": "author-%d" % (position % 7),
                "elements": elements,
                "references": references,
            },
        )
        documents.append(document.oid)
    return documents


def selectivity_values(n: int, distinct: int, seed: int = 3) -> List[int]:
    """n integer values with ``distinct`` distinct keys, shuffled."""
    rng = random.Random(seed)
    values = [position % distinct for position in range(n)]
    rng.shuffle(values)
    return values
