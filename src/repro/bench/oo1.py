"""The OO1 ("Sun"/Cattell) benchmark — Section 5.6 realized.

The paper calls for "a meaningful and common benchmark for
object-oriented database systems which will improve on the preliminary
benchmarks [RUBE87]" and notes relational benchmarks like Wisconsin
don't exercise inheritance, navigation or nested objects.  OO1 — by the
same Cattell whose [RUBE87] measurements the paper cites — became that
benchmark; this module implements it for both engines:

* **kimdb**: Part objects with a set-valued ``to`` of Connection
  objects, traversed navigationally through a swizzling workspace;
* **relational baseline**: part/connection tables, traversal as
  repeated joins.

Workload (per the OO1 definition, scaled):

* N parts, each with type, x, y, build;
* 3 connections per part, 90% to "nearby" parts (the locality rule);
* **lookup**: fetch K random parts by id;
* **traversal**: 7-level closure over connections from a random part;
* **insert**: add K parts with connections, committing at the end.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..core.attribute import AttributeDef
from ..workspace.cache import ObjectWorkspace

if TYPE_CHECKING:  # pragma: no cover
    from ..core.oid import OID
    from ..database import Database
    from ..relational.engine import RelationalEngine

PART_TYPES = ("part-type0", "part-type1", "part-type2", "part-type3")
CONNECTION_TYPES = ("conn-type0", "conn-type1")

#: OO1 constants.
CONNECTIONS_PER_PART = 3
LOCALITY = 0.9  # fraction of connections to the nearest 1% of parts
TRAVERSAL_DEPTH = 7


class OO1Data:
    """Deterministic generated dataset, engine-independent."""

    def __init__(self, n_parts: int, seed: int = 1989) -> None:
        rng = random.Random(seed)
        self.n_parts = n_parts
        #: part id -> (type, x, y, build)
        self.parts: List[Tuple[str, int, int, int]] = []
        #: (from id, to id, type, length) — ids are 1-based.
        self.connections: List[Tuple[int, int, str, int]] = []
        window = max(1, n_parts // 100)
        for part_id in range(1, n_parts + 1):
            self.parts.append(
                (
                    PART_TYPES[part_id % len(PART_TYPES)],
                    rng.randrange(100000),
                    rng.randrange(100000),
                    rng.randrange(10000),
                )
            )
            for _ in range(CONNECTIONS_PER_PART):
                if rng.random() < LOCALITY:
                    low = max(1, part_id - window)
                    high = min(n_parts, part_id + window)
                    target = rng.randrange(low, high + 1)
                else:
                    target = rng.randrange(1, n_parts + 1)
                self.connections.append(
                    (
                        part_id,
                        target,
                        CONNECTION_TYPES[part_id % len(CONNECTION_TYPES)],
                        rng.randrange(1000),
                    )
                )

    def random_part_ids(self, count: int, seed: int = 7) -> List[int]:
        rng = random.Random(seed)
        return [rng.randrange(1, self.n_parts + 1) for _ in range(count)]


# ----------------------------------------------------------------------
# kimdb runner
# ----------------------------------------------------------------------


class OO1KimDB:
    """OO1 over kimdb with navigational traversal."""

    def __init__(self, db: "Database", data: OO1Data) -> None:
        self.db = db
        self.data = data
        self._part_oids: Dict[int, "OID"] = {}
        self._load()

    def _load(self) -> None:
        db = self.db
        if not db.schema.has_class("Part"):
            # Connection2 domain referenced before definition: declare the
            # classes in dependency-tolerant order by creating Connection2
            # first with an Any target, then Part.
            db.define_class(
                "Connection2",
                attributes=[
                    AttributeDef("ctype", "String"),
                    AttributeDef("length", "Integer"),
                    AttributeDef("target", "Any"),
                ],
            )
            db.define_class(
                "Part",
                attributes=[
                    AttributeDef("part_id", "Integer", required=True),
                    AttributeDef("ptype", "String"),
                    AttributeDef("x", "Integer"),
                    AttributeDef("y", "Integer"),
                    AttributeDef("build", "Integer"),
                    AttributeDef("to", "Connection2", multi=True),
                ],
            )
        with db.transaction():
            for part_id, (ptype, x, y, build) in enumerate(self.data.parts, start=1):
                handle = db.new(
                    "Part",
                    {
                        "part_id": part_id,
                        "ptype": ptype,
                        "x": x,
                        "y": y,
                        "build": build,
                        "to": [],
                    },
                )
                self._part_oids[part_id] = handle.oid
            for from_id, to_id, ctype, length in self.data.connections:
                connection = db.new(
                    "Connection2",
                    {
                        "ctype": ctype,
                        "length": length,
                        "target": self._part_oids[to_id],
                    },
                )
                state = db.get_state(self._part_oids[from_id])
                db.update(
                    self._part_oids[from_id],
                    {"to": state.values["to"] + [connection.oid]},
                )
        db.create_hierarchy_index("Part", "part_id")

    def part_oid(self, part_id: int) -> "OID":
        return self._part_oids[part_id]

    # -- the three OO1 operations -------------------------------------------

    def lookup(self, part_ids: List[int]) -> int:
        """Fetch parts by id through the index; returns hit count.

        Probes the class-hierarchy index and fetches each part's state —
        the OODB analogue of a primary-key probe (OO1's lookup measures
        the data path, not query-language parsing; see
        :meth:`lookup_oql` for the declarative path).
        """
        index = self.db.indexes.get("ch_Part_part_id")
        found = 0
        for part_id in part_ids:
            for oid in index.lookup_eq(part_id):
                self.db.get_state(oid)
                found += 1
        return found

    def lookup_oql(self, part_ids: List[int]) -> int:
        """Lookup through the full declarative pipeline (parse + plan)."""
        found = 0
        for part_id in part_ids:
            result = self.db.select(
                "SELECT p FROM Part p WHERE p.part_id = %d" % part_id
            )
            found += len(result)
        return found

    def traverse(self, root_part_id: int, depth: int = TRAVERSAL_DEPTH,
                 workspace: Optional[ObjectWorkspace] = None) -> int:
        """Navigational closure; returns parts visited (with repeats,
        as OO1 specifies hierarchy traversal counts)."""
        ws = workspace or ObjectWorkspace(self.db, policy="lazy")
        visited = 0

        def walk(part, level: int) -> None:
            nonlocal visited
            visited += 1
            if level == 0:
                return
            for connection in part.refs("to"):
                target = connection.ref("target")
                if target is not None:
                    walk(target, level - 1)

        walk(ws.load(self._part_oids[root_part_id]), depth)
        return visited

    def insert(self, count: int, seed: int = 11) -> List["OID"]:
        """Insert new parts + connections in one transaction."""
        rng = random.Random(seed)
        created = []
        with self.db.transaction():
            for offset in range(count):
                part_id = self.data.n_parts + offset + 1
                handle = self.db.new(
                    "Part",
                    {
                        "part_id": part_id,
                        "ptype": PART_TYPES[part_id % len(PART_TYPES)],
                        "x": rng.randrange(100000),
                        "y": rng.randrange(100000),
                        "build": rng.randrange(10000),
                        "to": [],
                    },
                )
                connections = []
                for _ in range(CONNECTIONS_PER_PART):
                    target_id = rng.randrange(1, self.data.n_parts + 1)
                    connection = self.db.new(
                        "Connection2",
                        {
                            "ctype": CONNECTION_TYPES[0],
                            "length": rng.randrange(1000),
                            "target": self._part_oids[target_id],
                        },
                    )
                    connections.append(connection.oid)
                self.db.update(handle.oid, {"to": connections})
                self._part_oids[part_id] = handle.oid
                created.append(handle.oid)
        return created


# ----------------------------------------------------------------------
# relational runner
# ----------------------------------------------------------------------


class OO1Relational:
    """OO1 over the relational baseline: joins express traversal."""

    def __init__(self, engine: "RelationalEngine", data: OO1Data) -> None:
        self.engine = engine
        self.data = data
        self._load()

    def _load(self) -> None:
        engine = self.engine
        engine.create_table(
            "part",
            [("part_id", "int"), ("ptype", "str"), ("x", "int"), ("y", "int"), ("build", "int")],
            primary_key="part_id",
        )
        engine.create_table(
            "connection",
            [("from_id", "int"), ("to_id", "int"), ("ctype", "str"), ("length", "int")],
        )
        for part_id, (ptype, x, y, build) in enumerate(self.data.parts, start=1):
            engine.insert(
                "part",
                {"part_id": part_id, "ptype": ptype, "x": x, "y": y, "build": build},
            )
        for from_id, to_id, ctype, length in self.data.connections:
            engine.insert(
                "connection",
                {"from_id": from_id, "to_id": to_id, "ctype": ctype, "length": length},
            )
        engine.table("connection").create_index("from_id")

    def lookup(self, part_ids: List[int]) -> int:
        found = 0
        for part_id in part_ids:
            found += len(self.engine.select_eq("part", "part_id", part_id))
        return found

    def traverse(self, root_part_id: int, depth: int = TRAVERSAL_DEPTH) -> int:
        """Traversal expressed as repeated join rounds (the E4 shape)."""
        visited = 1
        frontier = [{"part_id": root_part_id}]
        for _level in range(depth):
            joined = self.engine.join(frontier, "part_id", "connection", "from_id")
            next_frontier = [{"part_id": row["to_id"]} for row in joined]
            # Each edge endpoint must be materialized as a part row.
            parts = self.engine.join(next_frontier, "part_id", "part", "part_id")
            visited += len(parts)
            frontier = next_frontier
            if not frontier:
                break
        return visited

    def insert(self, count: int, seed: int = 11) -> int:
        rng = random.Random(seed)
        for offset in range(count):
            part_id = self.data.n_parts + offset + 1
            self.engine.insert(
                "part",
                {
                    "part_id": part_id,
                    "ptype": PART_TYPES[part_id % len(PART_TYPES)],
                    "x": rng.randrange(100000),
                    "y": rng.randrange(100000),
                    "build": rng.randrange(10000),
                },
            )
            for _ in range(CONNECTIONS_PER_PART):
                self.engine.insert(
                    "connection",
                    {
                        "from_id": part_id,
                        "to_id": rng.randrange(1, self.data.n_parts + 1),
                        "ctype": CONNECTION_TYPES[0],
                        "length": rng.randrange(1000),
                    },
                )
        return count
