"""The Figure 1 vehicle schema — the paper's canonical example.

Reproduces the class hierarchy and aggregation hierarchy of Figure 1:
``Vehicle`` (with ``Automobile``/``Truck`` subclasses and
``DomesticAutomobile`` under ``Automobile``) aggregates a
``VehicleDrivetrain`` and a ``Company`` manufacturer; ``Company``
specializes into ``AutoCompany``/``TruckCompany`` with
``JapaneseAutoCompany`` under ``AutoCompany``.

The module also provides a deterministic population generator and the
paper's example query ("Find all vehicles that weigh more than 7500 lbs,
and that are manufactured by a company located in Detroit") as
:data:`FIG1_QUERY` — experiment E1.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List

from ..core.attribute import AttributeDef

if TYPE_CHECKING:  # pragma: no cover
    from ..core.oid import OID
    from ..database import Database

#: The example query of Section 3.2, in kimdb OQL.
FIG1_QUERY = (
    "SELECT v FROM Vehicle v "
    "WHERE v.weight > 7500 AND v.manufacturer.location = 'Detroit'"
)

CITIES = ("Detroit", "Dearborn", "Tokyo", "Nagoya", "Austin", "Stuttgart")

DRIVETRAIN_TYPES = ("manual", "automatic", "cvt")


def build_vehicle_schema(db: "Database") -> None:
    """Define the Figure 1 classes on ``db``."""
    db.define_class(
        "Company",
        attributes=[
            AttributeDef("name", "String", required=True),
            AttributeDef("location", "String"),
        ],
        doc="A manufacturer (Figure 1).",
    )
    db.define_class("AutoCompany", superclasses=("Company",))
    db.define_class("TruckCompany", superclasses=("Company",))
    db.define_class("JapaneseAutoCompany", superclasses=("AutoCompany",))

    db.define_class(
        "VehicleDrivetrain",
        attributes=[
            AttributeDef("type", "String"),
            AttributeDef("horsepower", "Integer"),
        ],
        doc="Aggregated part of Vehicle (Figure 1).",
    )
    db.define_class(
        "Vehicle",
        attributes=[
            AttributeDef("weight", "Integer"),
            AttributeDef("color", "String"),
            AttributeDef("price", "Integer"),
            AttributeDef("drivetrain", "VehicleDrivetrain", composite=True,
                         exclusive=True, dependent=True),
            AttributeDef("manufacturer", "Company"),
        ],
        doc="Root of the vehicle class hierarchy (Figure 1).",
    )
    db.define_class(
        "Automobile",
        superclasses=("Vehicle",),
        attributes=[AttributeDef("doors", "Integer", default=4)],
    )
    db.define_class("DomesticAutomobile", superclasses=("Automobile",))
    db.define_class(
        "Truck",
        superclasses=("Vehicle",),
        attributes=[AttributeDef("payload", "Integer")],
    )


#: Round-robin mixture of concrete vehicle classes used by the generator.
VEHICLE_CLASSES = ("Vehicle", "Automobile", "DomesticAutomobile", "Truck")


def populate_vehicles(
    db: "Database",
    n_vehicles: int = 1000,
    n_companies: int = 20,
    seed: int = 1990,
    detroit_fraction: float = 0.25,
) -> Dict[str, List["OID"]]:
    """Deterministically populate the Figure 1 schema.

    Roughly ``detroit_fraction`` of the companies sit in Detroit; vehicle
    weights are uniform in [1000, 12000] so the 7500-lb predicate selects
    ~41% before the location conjunct.  Returns OIDs by class.
    """
    rng = random.Random(seed)
    company_classes = ("Company", "AutoCompany", "TruckCompany", "JapaneseAutoCompany")
    companies: List["OID"] = []
    n_detroit = max(1, int(n_companies * detroit_fraction))
    for position in range(n_companies):
        cls = company_classes[position % len(company_classes)]
        location = "Detroit" if position < n_detroit else CITIES[
            1 + rng.randrange(len(CITIES) - 1)
        ]
        handle = db.new(
            cls, {"name": "company-%d" % position, "location": location}
        )
        companies.append(handle.oid)

    out: Dict[str, List["OID"]] = {cls: [] for cls in VEHICLE_CLASSES}
    out["Company"] = companies
    for position in range(n_vehicles):
        cls = VEHICLE_CLASSES[position % len(VEHICLE_CLASSES)]
        drivetrain = db.new(
            "VehicleDrivetrain",
            {
                "type": DRIVETRAIN_TYPES[position % len(DRIVETRAIN_TYPES)],
                "horsepower": 80 + rng.randrange(400),
            },
        )
        values = {
            "weight": 1000 + rng.randrange(11001),
            "color": ("red", "blue", "white", "black")[position % 4],
            "price": 5000 + rng.randrange(95000),
            "drivetrain": drivetrain.oid,
            "manufacturer": companies[rng.randrange(len(companies))],
        }
        if cls in ("Automobile", "DomesticAutomobile"):
            values["doors"] = 2 + 2 * (position % 2)
        elif cls == "Truck":
            values["payload"] = 1000 + rng.randrange(20000)
        handle = db.new(cls, values)
        out[cls].append(handle.oid)
    return out
