"""The fault injector: seeded plans and the file proxy that executes them.

**Crash model.**  Every write through a :class:`FaultyFile` is applied
to the real file immediately (write-through) and recorded in an undo
log; an honest fsync clears the log.  When the plan's crash point fires,
the injector rewinds each file to a *prefix* of its unsynced writes —
the survivors — and may apply only a prefix of the crashing write's
bytes (a torn write).  This is the SQLite TCL crash-harness model: the
OS/disk cache persists some ordered prefix of what was never synced,
and the final sector in flight may tear.  A lying fsync simply refuses
to clear the undo log, so "durable" bytes stay droppable — exactly what
hardware that acknowledges flushes it never performed does to you.

After the crash fires, reads, writes and fsyncs on every wrapped file
raise :class:`InjectedCrash` (the process is dead); ``flush`` and
``close`` become no-ops so garbage collection stays quiet, like the OS
reclaiming a dead process's descriptors.

All randomness comes from one ``random.Random(seed)`` drawn in I/O
order, so a failing torture seed replays exactly.
"""

from __future__ import annotations

import errno
import os
import random
import threading
from typing import Any, List, Optional

from ..obs.metrics import MetricsRegistry


class InjectedCrash(BaseException):
    """A simulated hard crash (power loss) at an injected fault point.

    Deliberately a ``BaseException``: ordinary ``except Exception``
    cleanup handlers must not swallow it, because a real power failure
    gives no handler the chance to run either.
    """


class _WriteEntry:
    """One unsynced write: where it went and what it replaced."""

    __slots__ = ("offset", "old", "new_len", "pre_size")

    def __init__(self, offset: int, old: bytes, new_len: int, pre_size: int) -> None:
        self.offset = offset
        self.old = old
        self.new_len = new_len
        self.pre_size = pre_size


class FaultPlan:
    """A deterministic schedule of injected failures.

    Parameters
    ----------
    seed:
        The single integer every random decision derives from.
    crash_after:
        Crash on the Nth counted I/O operation (writes and fsyncs
        through wrapped files).  None disables crashing.
    torn_writes:
        Allow the crashing write to persist a random prefix of its
        bytes.  When False the crashing write is dropped whole.
    lying_fsync_rate:
        Probability that an fsync reports success without durability
        (its file's unsynced writes stay droppable at the crash).
    os_error_rate:
        Probability that a read or write raises a transient
        ``OSError(EIO)`` instead of executing.
    os_error_budget:
        Hard cap on injected transient errors, so a workload always
        makes progress.
    """

    def __init__(
        self,
        seed: int,
        crash_after: Optional[int] = None,
        torn_writes: bool = True,
        lying_fsync_rate: float = 0.0,
        os_error_rate: float = 0.0,
        os_error_budget: int = 3,
    ) -> None:
        self.seed = seed
        self.crash_after = crash_after
        self.torn_writes = torn_writes
        self.lying_fsync_rate = lying_fsync_rate
        self.os_error_rate = os_error_rate
        self.os_error_budget = os_error_budget
        self.rng = random.Random(seed)
        self.io_ops = 0
        self.crashed = False
        self.files: List["FaultyFile"] = []
        self._fault_mutex = threading.Lock()

    # -- installation ------------------------------------------------------

    def install(self) -> "FaultPlan":
        """Make this the active plan (usable as a context manager)."""
        _ACTIVE.append(self)
        return self

    def uninstall(self) -> None:
        if self in _ACTIVE:
            _ACTIVE.remove(self)

    def __enter__(self) -> "FaultPlan":
        if self not in _ACTIVE:
            self.install()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()

    def wrap(
        self, handle: Any, label: str, registry: Optional[MetricsRegistry] = None
    ) -> "FaultyFile":
        proxy = FaultyFile(handle, label, self, registry)
        self.files.append(proxy)
        return proxy

    # -- decisions (called by FaultyFile under the mutex) ------------------

    def _count_op(self) -> bool:
        """Advance the I/O clock; True when this op is the crash point."""
        self.io_ops += 1
        return self.crash_after is not None and self.io_ops >= self.crash_after

    def _transient_error(self) -> bool:
        if self.os_error_budget <= 0 or self.os_error_rate <= 0.0:
            return False
        if self.rng.random() >= self.os_error_rate:
            return False
        self.os_error_budget -= 1
        return True

    def _crash(self, crashing: Optional["FaultyFile"], data: Optional[bytes]) -> None:
        """Execute the crash: rewind unsynced state, then raise."""
        self.crashed = True
        for proxy in self.files:
            proxy._rewind_unsynced(self.rng)
        if (
            crashing is not None
            and data
            and self.torn_writes
            and not crashing._dropped_writes_at_crash
        ):
            # The in-flight write tears only when every earlier write of
            # its file survived — a disk persists its cache in order.
            keep = self.rng.randrange(len(data))
            if keep:
                crashing._apply_torn_prefix(data[:keep])
        raise InjectedCrash(
            "injected crash at io op %d (seed %d)" % (self.io_ops, self.seed)
        )

    def __repr__(self) -> str:
        return "<FaultPlan seed=%d ops=%d%s>" % (
            self.seed,
            self.io_ops,
            " CRASHED" if self.crashed else "",
        )


#: Installed plans, innermost last.  A stack so nested test fixtures
#: compose; :func:`active_plan` returns the top.
_ACTIVE: List[FaultPlan] = []


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


def wrap_file(
    handle: Any, label: str, registry: Optional[MetricsRegistry] = None
) -> Any:
    """Wrap ``handle`` in the active plan's proxy, or return it unchanged.

    The single hook the engine calls wherever the pager or the WAL opens
    a file.  With no plan installed this is an attribute read and a
    ``return`` — fault injection costs nothing unless armed.
    """
    plan = active_plan()
    if plan is None:
        return handle
    return plan.wrap(handle, label, registry)


def fsync_file(handle: Any) -> None:
    """fsync through the proxy when present, else the real thing.

    ``os.fsync(handle.fileno())`` would bypass the proxy entirely — the
    file descriptor is real — so durability points must route through
    this helper for lying-fsync injection to see them.
    """
    if isinstance(handle, FaultyFile):
        handle.fsync()
    else:
        os.fsync(handle.fileno())


class FaultyFile:
    """A file-object proxy that executes the active :class:`FaultPlan`.

    Supports the slice of the file protocol the pager and WAL use:
    ``write``/``read``/``seek``/``tell``/``flush``/``close``/``fileno``
    plus an explicit :meth:`fsync` durability point.
    """

    def __init__(
        self,
        handle: Any,
        label: str,
        plan: FaultPlan,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._file = handle
        self.label = label
        self.plan = plan
        self._appending = "a" in getattr(handle, "mode", "")
        self._readable = handle.readable()
        self._unsynced: List[_WriteEntry] = []
        self._dropped_writes_at_crash = False
        registry = registry if registry is not None else MetricsRegistry()
        self._m_ops = registry.counter("fault.io_ops")
        self._m_torn = registry.counter("fault.torn_writes")
        self._m_dropped = registry.counter("fault.dropped_writes")
        self._m_lying = registry.counter("fault.lying_fsyncs")
        self._m_errors = registry.counter("fault.os_errors")
        self._m_crashes = registry.counter("fault.crashes")

    # -- plumbing ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._file.closed

    @property
    def name(self) -> str:
        return getattr(self._file, "name", self.label)

    def fileno(self) -> int:
        return self._file.fileno()

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._file.seek(offset, whence)

    def tell(self) -> int:
        return self._file.tell()

    def readable(self) -> bool:
        return self._readable

    # -- faulted operations ------------------------------------------------

    def _check_dead(self) -> None:
        if self.plan.crashed:
            raise InjectedCrash(
                "I/O on %s after injected crash (seed %d)"
                % (self.label, self.plan.seed)
            )

    def read(self, size: int = -1) -> bytes:
        with self.plan._fault_mutex:
            self._check_dead()
            if self.plan._transient_error():
                self._m_errors.inc()
                raise OSError(errno.EIO, "injected transient read error", self.label)
        return self._file.read(size)

    def write(self, data: bytes) -> int:
        with self.plan._fault_mutex:
            self._check_dead()
            if self.plan._transient_error():
                self._m_errors.inc()
                raise OSError(errno.EIO, "injected transient write error", self.label)
            self._m_ops.inc()
            if self.plan._count_op():
                self._m_crashes.inc()
                self.plan._crash(self, bytes(data))
            self._record_undo(data)
            written = self._file.write(data)
            # Write-through: push python's userspace buffer to the OS so
            # the undo log's byte accounting matches the real file.
            self._file.flush()
            return written

    def flush(self) -> None:
        if self.plan.crashed:
            return
        self._file.flush()

    def fsync(self) -> None:
        with self.plan._fault_mutex:
            self._check_dead()
            self._m_ops.inc()
            if self.plan._count_op():
                self._m_crashes.inc()
                self.plan._crash(None, None)
            self._file.flush()
            if self.plan.rng.random() < self.plan.lying_fsync_rate:
                # Acknowledge without durability: the unsynced writes
                # stay on the undo log, droppable at the crash.
                self._m_lying.inc()
                return
            os.fsync(self._file.fileno())
            self._unsynced.clear()

    def close(self) -> None:
        if self.plan.crashed:
            # A crashed process's descriptors are reclaimed silently.
            if not self._file.closed:
                self._file.close()
            return
        self._file.close()

    # -- crash bookkeeping -------------------------------------------------

    def _record_undo(self, data: bytes) -> None:
        self._file.flush()
        fd = self._file.fileno()
        pre_size = os.fstat(fd).st_size
        offset = pre_size if self._appending else self._file.tell()
        old = b""
        if self._readable and offset < pre_size:
            old = os.pread(fd, len(data), offset)
        self._unsynced.append(_WriteEntry(offset, old, len(data), pre_size))

    def _rewind_unsynced(self, rng: random.Random) -> None:
        """Keep a random prefix of unsynced writes; revert the rest."""
        if self._file.closed or not self._unsynced:
            return
        self._file.flush()
        cut = rng.randrange(len(self._unsynced) + 1)
        dropped = self._unsynced[cut:]
        if not dropped:
            return
        self._dropped_writes_at_crash = True
        fd = self._file.fileno()
        for entry in reversed(dropped):
            if entry.old and not self._appending:
                os.pwrite(fd, entry.old, entry.offset)
        # The oldest dropped write's pre-size is the file length at the
        # survival cut; everything beyond it never happened.
        os.ftruncate(fd, dropped[0].pre_size)
        self._m_dropped.inc(len(dropped))
        self._unsynced = self._unsynced[:cut]

    def _apply_torn_prefix(self, prefix: bytes) -> None:
        """Persist only ``prefix`` of the crashing write (a torn write)."""
        if self._file.closed:
            return
        fd = self._file.fileno()
        if self._appending:
            self._file.write(prefix)
            self._file.flush()
        else:
            os.pwrite(fd, prefix, self._file.tell())
        self._m_torn.inc()

    def __repr__(self) -> str:
        return "<FaultyFile %s unsynced=%d%s>" % (
            self.label,
            len(self._unsynced),
            " DEAD" if self.plan.crashed else "",
        )
