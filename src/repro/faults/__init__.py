"""Deterministic fault injection for the storage and WAL layers.

Failure is an *input* to a database engine, not an accident.  This
package makes it a reproducible one: a :class:`FaultPlan` seeded with a
single integer wraps every file handle the pager and the write-ahead log
open in a :class:`FaultyFile` proxy that can

- crash hard at the Nth I/O operation (raising :class:`InjectedCrash`),
- tear the crashing write (persist only a prefix of its bytes),
- drop unsynced writes at the crash point, the way a volatile disk
  cache loses its contents on power failure,
- lie on fsync (report success without making anything durable), and
- throw transient ``OSError``\\ s on reads and writes.

The engine opts in with one call — :func:`wrap_file` returns the handle
unchanged when no plan is installed, so production code pays nothing.
``tests/test_fault_torture.py`` drives the random workload of the crash
torture suite through a matrix of seeded crash points and asserts exact
committed-state equivalence after recovery.
"""

from .injector import (
    FaultPlan,
    FaultyFile,
    InjectedCrash,
    active_plan,
    fsync_file,
    wrap_file,
)

__all__ = [
    "FaultPlan",
    "FaultyFile",
    "InjectedCrash",
    "active_plan",
    "fsync_file",
    "wrap_file",
]
