"""Mandatory (multilevel) security [THUR89].

Section 5's research list includes the "extension of authorization to
account for mandatory and context-based security".  This module layers a
Bell-LaPadula-style multilevel model *under* the discretionary role
model of :mod:`repro.authz.model`:

* a total order of security levels (default: unclassified <
  confidential < secret < top_secret);
* objects carry a classification — per instance, or defaulted from
  their class (subclass classifications dominate their superclasses');
* subjects carry a clearance;
* **simple security** (no read up): a subject reads an object only if
  clearance >= classification;
* **star property** (no write down): a subject writes/creates/deletes at
  a level only if the object's level >= the subject's level, preventing
  information flow from high to low;
* query results are *filtered* (polyinstantiation-free): objects above
  the subject's clearance silently vanish, which is also how the model
  avoids covert existence channels through errors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..core.oid import OID
from ..errors import AuthorizationError

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database
    from ..query.executor import ResultSet

DEFAULT_LEVELS = ("unclassified", "confidential", "secret", "top_secret")


class MandatorySecurityManager:
    """Multilevel security enforcement for one database."""

    def __init__(self, db: "Database", levels: Sequence[str] = DEFAULT_LEVELS) -> None:
        if len(levels) < 2 or len(set(levels)) != len(levels):
            raise AuthorizationError("need at least two distinct security levels")
        self.db = db
        self.levels = tuple(levels)
        self._rank = {name: position for position, name in enumerate(levels)}
        #: class name -> default classification of its instances.
        self._class_levels: Dict[str, str] = {}
        #: per-object overrides.
        self._object_levels: Dict[OID, str] = {}
        #: subject name -> clearance.
        self._clearances: Dict[str, str] = {}
        self._subject: Optional[str] = None
        self.denials = 0

    # -- configuration -----------------------------------------------------

    def _check_level(self, level: str) -> None:
        if level not in self._rank:
            raise AuthorizationError(
                "unknown security level %r (levels: %s)"
                % (level, ", ".join(self.levels))
            )

    def classify_class(self, class_name: str, level: str) -> None:
        """Default classification for instances of a class (and its
        subclasses, unless they declare their own)."""
        self.db.schema.get_class(class_name)
        self._check_level(level)
        self._class_levels[class_name] = level

    def classify_object(self, oid: OID, level: str) -> None:
        self._check_level(level)
        self._object_levels[oid] = level

    def clear_subject(self, subject: str, level: str) -> None:
        self._check_level(level)
        self._clearances[subject] = level

    def set_subject(self, subject: Optional[str]) -> None:
        if subject is not None and subject not in self._clearances:
            raise AuthorizationError("subject %r has no clearance" % (subject,))
        self._subject = subject

    class _SubjectContext:
        def __init__(self, manager: "MandatorySecurityManager", subject: str) -> None:
            self._manager = manager
            self._subject = subject
            self._previous: Optional[str] = None

        def __enter__(self):
            self._previous = self._manager._subject
            self._manager.set_subject(self._subject)
            return self._manager

        def __exit__(self, *exc_info):
            self._manager._subject = self._previous

    def as_subject(self, subject: str) -> "_SubjectContext":
        return self._SubjectContext(self, subject)

    # -- classification resolution ------------------------------------------

    def classification_of(self, class_name: str, oid: Optional[OID] = None) -> str:
        """Effective level: object override, else nearest class default
        along the MRO, else the lowest level."""
        if oid is not None:
            override = self._object_levels.get(oid)
            if override is not None:
                return override
        if self.db.schema.has_class(class_name):
            for cls in self.db.schema.mro(class_name):
                level = self._class_levels.get(cls)
                if level is not None:
                    return level
        return self.levels[0]

    def clearance_of(self, subject: str) -> str:
        level = self._clearances.get(subject)
        if level is None:
            raise AuthorizationError("subject %r has no clearance" % (subject,))
        return level

    # -- decisions --------------------------------------------------------------

    def allowed(self, action: str, class_name: str, oid: Optional[OID] = None) -> bool:
        if self._subject is None:
            return True  # MAC not activated for this session
        clearance = self._rank[self.clearance_of(self._subject)]
        classification = self._rank[self.classification_of(class_name, oid)]
        if action == "read":
            return clearance >= classification  # no read up
        # create/write/delete: no write down.
        return classification >= clearance

    def check(self, action: str, class_name: str, oid: Optional[OID] = None) -> None:
        if not self.allowed(action, class_name, oid):
            self.denials += 1
            raise AuthorizationError(
                "mandatory security: subject %r (clearance %s) may not %s "
                "%s%s at level %s"
                % (
                    self._subject,
                    self.clearance_of(self._subject),
                    action,
                    class_name,
                    " instance %r" % (oid,) if oid is not None else "",
                    self.classification_of(class_name, oid),
                )
            )

    def read_allowed(self, oid: OID) -> bool:
        """Per-object no-read-up decision for streaming paths."""
        if self._subject is None:
            return True  # MAC not activated for this session
        return self.allowed("read", self.db.class_of(oid), oid)

    def filter_result(self, result: "ResultSet") -> "ResultSet":
        """Silently drop objects classified above the subject's clearance."""
        if self._subject is None:
            return result
        keep = [
            position
            for position, oid in enumerate(result.oids)
            if self.allowed("read", self.db.class_of(oid), oid)
        ]
        if len(keep) != len(result.oids):
            result.oids = [result.oids[i] for i in keep]
            if result.rows is not None:
                result.rows = [result.rows[i] for i in keep]
        return result


def attach_mandatory(
    db: "Database", levels: Sequence[str] = DEFAULT_LEVELS
) -> MandatorySecurityManager:
    manager = MandatorySecurityManager(db, levels)
    db.mac = manager
    return manager
