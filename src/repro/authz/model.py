"""Authorization for object-oriented databases [RABI91, THUR89].

The model of *A Model of Authorization for Next-Generation Database
Systems*: authorizations are (role, action, resource) triples, positive
or negative, and most authorizations are **implicit** — derived along
three orthogonal hierarchies:

* the **role graph** (subject hierarchy): a role inherits the grants of
  the roles it extends;
* the **granularity hierarchy**: database -> class -> object (a grant on
  a class covers its instances);
* the **class hierarchy**: a grant with ``include_subclasses=True``
  covers subclass extents, matching hierarchy-scoped queries;

plus the **action lattice**: ``write`` implies ``read``; a negative
``read`` implies negative everything-on-that-resource (you cannot write
what you may not see).

Resolution: explicit beats implicit at the same distance is simplified to
the conservative classic rule — *a negative authorization anywhere in the
applicable set overrides positives*; no applicable authorization means
denial (closed world).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple, Union

from ..core.oid import OID
from ..errors import AuthorizationError

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database
    from ..query.executor import ResultSet

ACTIONS = ("read", "write", "create", "delete")

#: action -> actions whose grant implies it.
_IMPLIED_BY = {
    "read": ("read", "write"),
    "write": ("write",),
    "create": ("create",),
    "delete": ("delete",),
}

Resource = Union[str, Tuple[str, object]]

DATABASE_RESOURCE: Resource = ("database", None)


class AuthorizationManager:
    """Role-based authorization with implicit derivation."""

    #: Role that bypasses all checks (the DBA).
    SUPERUSER = "system"

    def __init__(self, db: "Database") -> None:
        self.db = db
        #: role -> roles it extends (inherits grants from).
        self._role_parents: Dict[str, List[str]] = {self.SUPERUSER: []}
        #: (role, action) -> set of (resource, include_subclasses)
        self._grants: Dict[Tuple[str, str], Set[Tuple[Resource, bool]]] = {}
        self._denials: Dict[Tuple[str, str], Set[Tuple[Resource, bool]]] = {}
        self._subject: Optional[str] = self.SUPERUSER
        self.checks = 0
        self.denied = 0

    # -- role graph -----------------------------------------------------------

    def add_role(self, name: str, extends: Optional[List[str]] = None) -> None:
        if name in self._role_parents:
            raise AuthorizationError("role %r already exists" % (name,))
        for parent in extends or []:
            if parent not in self._role_parents:
                raise AuthorizationError("unknown parent role %r" % (parent,))
        self._role_parents[name] = list(extends or [])

    def _role_closure(self, role: str) -> Set[str]:
        if role not in self._role_parents:
            raise AuthorizationError("unknown role %r" % (role,))
        closure: Set[str] = set()
        stack = [role]
        while stack:
            current = stack.pop()
            if current in closure:
                continue
            closure.add(current)
            stack.extend(self._role_parents[current])
        return closure

    # -- grants ----------------------------------------------------------------

    @staticmethod
    def _normalize_resource(resource) -> Resource:
        if resource == "database" or resource == DATABASE_RESOURCE:
            return DATABASE_RESOURCE
        if isinstance(resource, OID):
            return ("object", resource)
        if isinstance(resource, str):
            return ("class", resource)
        if isinstance(resource, tuple) and len(resource) == 2:
            return resource
        raise AuthorizationError("cannot interpret resource %r" % (resource,))

    def grant(
        self, role: str, action: str, resource, include_subclasses: bool = True
    ) -> None:
        self._record(self._grants, role, action, resource, include_subclasses)

    def deny(
        self, role: str, action: str, resource, include_subclasses: bool = True
    ) -> None:
        self._record(self._denials, role, action, resource, include_subclasses)

    def _record(self, table, role: str, action: str, resource, include_subclasses: bool) -> None:
        if action not in ACTIONS:
            raise AuthorizationError(
                "unknown action %r (expected one of %s)" % (action, ", ".join(ACTIONS))
            )
        if role not in self._role_parents:
            raise AuthorizationError("unknown role %r" % (role,))
        table.setdefault((role, action), set()).add(
            (self._normalize_resource(resource), include_subclasses)
        )

    # -- subject ------------------------------------------------------------------

    @property
    def subject(self) -> Optional[str]:
        return self._subject

    def set_subject(self, role: Optional[str]) -> None:
        if role is not None and role not in self._role_parents:
            raise AuthorizationError("unknown role %r" % (role,))
        self._subject = role

    class _SubjectContext:
        def __init__(self, manager: "AuthorizationManager", role: str) -> None:
            self._manager = manager
            self._role = role
            self._previous: Optional[str] = None

        def __enter__(self):
            self._previous = self._manager.subject
            self._manager.set_subject(self._role)
            return self._manager

        def __exit__(self, *exc_info):
            self._manager.set_subject(self._previous)

    def as_subject(self, role: str) -> "_SubjectContext":
        """Context manager switching the current subject temporarily."""
        return self._SubjectContext(self, role)

    # -- decision ---------------------------------------------------------------------

    def _applicable_resources(
        self, class_name: str, oid: Optional[OID]
    ) -> List[Resource]:
        resources: List[Resource] = [DATABASE_RESOURCE]
        if self.db.schema.has_class(class_name):
            for ancestor in self.db.schema.mro(class_name):
                resources.append(("class", ancestor))
        else:
            # View names (virtual classes) have no MRO; they authorize
            # by exact name — the content-based authorization path.
            resources.append(("class", class_name))
        if oid is not None:
            resources.append(("object", oid))
        return resources

    def _matches(
        self,
        entries: Set[Tuple[Resource, bool]],
        resources: List[Resource],
        class_name: str,
    ) -> bool:
        for resource, include_subclasses in entries:
            if resource == DATABASE_RESOURCE and DATABASE_RESOURCE in resources:
                return True
            if resource[0] == "object" and resource in resources:
                return True
            if resource[0] == "class":
                if ("class", class_name) == resource:
                    return True
                if include_subclasses and resource in resources:
                    return True
        return False

    def allowed(self, action: str, class_name: str, oid: Optional[OID] = None) -> bool:
        if self._subject is None:
            return False
        roles = self._role_closure(self._subject)
        if self.SUPERUSER in roles:
            return True
        resources = self._applicable_resources(class_name, oid)
        # Negative authorizations override: denial of `read` poisons all.
        for role in roles:
            for denied_action in ACTIONS:
                entries = self._denials.get((role, denied_action))
                if not entries:
                    continue
                if denied_action == action or (
                    denied_action == "read" and action in ("read", "write")
                ):
                    if self._matches(entries, resources, class_name):
                        return False
        for role in roles:
            for granting_action in _IMPLIED_BY[action]:
                entries = self._grants.get((role, granting_action))
                if entries and self._matches(entries, resources, class_name):
                    return True
        return False

    def check(self, action: str, class_name: str, oid: Optional[OID] = None) -> None:
        self.checks += 1
        if not self.allowed(action, class_name, oid):
            self.denied += 1
            raise AuthorizationError(
                "subject %r may not %s %s%s"
                % (
                    self._subject,
                    action,
                    class_name,
                    " instance %r" % (oid,) if oid is not None else "",
                )
            )

    def read_allowed(self, oid: OID) -> bool:
        """Per-object read decision for streaming paths (``select_iter``).

        Mirrors :meth:`filter_result`: no subject means nothing is
        readable, the superuser role reads everything, otherwise the
        grant/denial evaluation runs per object.
        """
        if self._subject is None:
            return False
        if self.SUPERUSER in self._role_closure(self._subject):
            return True
        return self.allowed("read", self.db.class_of(oid), oid)

    def filter_result(self, result: "ResultSet") -> "ResultSet":
        """Content filter: drop objects the subject may not read."""
        if self._subject is None:
            result.oids = []
            result.rows = [] if result.rows is not None else None
            return result
        roles = self._role_closure(self._subject)
        if self.SUPERUSER in roles:
            return result
        keep_indices = [
            position
            for position, oid in enumerate(result.oids)
            if self.allowed("read", self.db.class_of(oid), oid)
        ]
        result.oids = [result.oids[i] for i in keep_indices]
        if result.rows is not None:
            result.rows = [result.rows[i] for i in keep_indices]
        return result


def attach(db: "Database") -> AuthorizationManager:
    manager = AuthorizationManager(db)
    db.authz = manager
    return manager
