"""Authorization: discretionary roles + mandatory multilevel security."""

from .mandatory import DEFAULT_LEVELS, MandatorySecurityManager, attach_mandatory
from .model import ACTIONS, AuthorizationManager, attach

__all__ = [
    "ACTIONS",
    "AuthorizationManager",
    "attach",
    "DEFAULT_LEVELS",
    "MandatorySecurityManager",
    "attach_mandatory",
]
