"""Object state and object handles.

An :class:`ObjectState` is the raw stored form of an object: its OID, the
name of the single class it is an instance of (core concept 3) and its
attribute values.  An :class:`ObjectHandle` is the encapsulated,
application-facing view: per core concept 6 all access goes through the
handle, which routes reads through the attribute interface and behavior
through message passing with late binding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, Optional

from ..errors import AttributeNotFoundError
from .oid import OID

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database import Database


class ObjectState:
    """The persistent state of one object."""

    __slots__ = ("oid", "class_name", "values")

    def __init__(self, oid: OID, class_name: str, values: Dict[str, Any]) -> None:
        self.oid = oid
        self.class_name = class_name
        self.values = values

    def get(self, name: str, default: Any = None) -> Any:
        return self.values.get(name, default)

    def copy(self) -> "ObjectState":
        """Shallow-plus copy: the values dict and any list values are new."""
        values = {
            key: (list(val) if isinstance(val, list) else val)
            for key, val in self.values.items()
        }
        return ObjectState(self.oid, self.class_name, values)

    def references(self) -> Iterator[OID]:
        """All OIDs this object refers to (single and set-valued)."""
        for value in self.values.values():
            if isinstance(value, OID):
                yield value
            elif isinstance(value, list):
                for element in value:
                    if isinstance(element, OID):
                        yield element

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ObjectState)
            and other.oid == self.oid
            and other.class_name == self.class_name
            and other.values == self.values
        )

    def __repr__(self) -> str:
        return "<ObjectState %r %s %r>" % (self.oid, self.class_name, self.values)


class ObjectHandle:
    """Encapsulated view of a stored object.

    Handles are cheap and transient; they hold only the database reference
    and the OID.  Attribute reads fetch the current committed (or
    transaction-local) state; attribute writes and deletes route through
    the database so indexes, logging and locks stay consistent.
    """

    __slots__ = ("_db", "oid")

    def __init__(self, db: "Database", oid: OID) -> None:
        self._db = db
        self.oid = oid

    # -- identity / metadata --------------------------------------------

    @property
    def class_name(self) -> str:
        return self._db.class_of(self.oid)

    @property
    def database(self) -> "Database":
        return self._db

    def is_instance_of(self, class_name: str, strict: bool = False) -> bool:
        """Membership test; non-strict includes subclass instances."""
        actual = self.class_name
        if strict:
            return actual == class_name
        return self._db.schema.is_subclass(actual, class_name)

    # -- state access ------------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        # read_state, not get_state: inside a transaction with snapshot
        # reads on, attribute access agrees with the transaction's query
        # snapshot (repeatable reads) instead of chasing current state.
        state = self._db.read_state(self.oid)
        if name not in self._db.schema.attributes(state.class_name):
            raise AttributeNotFoundError(
                "class %s has no attribute %r" % (state.class_name, name)
            )
        return state.values.get(name)

    def __setitem__(self, name: str, value: Any) -> None:
        self._db.update(self.oid, {name: value})

    def get(self, name: str, default: Any = None) -> Any:
        try:
            value = self[name]
        except AttributeNotFoundError:
            return default
        return default if value is None else value

    def fetch(self, name: str) -> Optional["ObjectHandle"]:
        """Dereference a reference-valued attribute to another handle."""
        value = self[name]
        if value is None:
            return None
        if not isinstance(value, OID):
            raise AttributeNotFoundError(
                "attribute %r of %r is not a reference" % (name, self.oid)
            )
        return ObjectHandle(self._db, value)

    def fetch_all(self, name: str) -> list:
        """Dereference a set-valued reference attribute to handles."""
        value = self[name]
        if value is None:
            return []
        if isinstance(value, OID):
            return [ObjectHandle(self._db, value)]
        return [
            ObjectHandle(self._db, element)
            for element in value
            if isinstance(element, OID)
        ]

    def state(self) -> ObjectState:
        """A defensive copy of the full transaction-consistent state."""
        return self._db.read_state(self.oid).copy()

    def to_dict(self) -> Dict[str, Any]:
        """Attribute values as a plain dict (copy)."""
        return dict(self._db.read_state(self.oid).values)

    # -- behavior ---------------------------------------------------------

    def send(self, selector: str, *args: Any, **kwargs: Any) -> Any:
        """Send a message; the method binds at run time (late binding)."""
        return self._db.send(self.oid, selector, *args, **kwargs)

    def super_send(self, above: str, selector: str, *args: Any, **kwargs: Any) -> Any:
        """Send a message resolved strictly above class ``above``."""
        meth = self._db.schema.resolve_method_above(self.class_name, selector, above)
        return meth.invoke(self, *args, **kwargs)

    def responds_to(self, selector: str) -> bool:
        return self._db.schema.defines_or_inherits_method(self.class_name, selector)

    # -- dunder plumbing ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ObjectHandle)
            and other.oid == self.oid
            and other._db is self._db
        )

    def __hash__(self) -> int:
        return hash((id(self._db), self.oid))

    def __repr__(self) -> str:
        try:
            cls = self.class_name
        except Exception:  # deleted or detached object
            cls = "?"
        return "<%s %r>" % (cls, self.oid)
