"""Core object-oriented data model (the paper's Section 3.1 concepts)."""

from .attribute import NO_DEFAULT, AttributeDef
from .inheritance import c3_linearize, resolve_by_precedence
from .klass import ClassDef
from .method import MethodDef, method
from .obj import ObjectHandle, ObjectState
from .oid import OID, OIDGenerator
from .primitives import (
    ANY_CLASS,
    BUILTIN_CLASSES,
    PRIMITIVE_TYPES,
    ROOT_CLASS,
    is_primitive_class,
    primitive_accepts,
    primitive_class_of,
)
from .schema import Schema

__all__ = [
    "AttributeDef",
    "NO_DEFAULT",
    "ClassDef",
    "MethodDef",
    "method",
    "ObjectHandle",
    "ObjectState",
    "OID",
    "OIDGenerator",
    "Schema",
    "ANY_CLASS",
    "BUILTIN_CLASSES",
    "PRIMITIVE_TYPES",
    "ROOT_CLASS",
    "is_primitive_class",
    "primitive_accepts",
    "primitive_class_of",
    "c3_linearize",
    "resolve_by_precedence",
]
