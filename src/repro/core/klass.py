"""Class definitions.

Core concepts 3-5 of the paper: objects sharing attributes and methods are
grouped into a class; each object is an instance of exactly one class; all
classes form a rooted DAG.  A :class:`ClassDef` records what the class
*itself* declares (its "own" attributes and methods); the effective,
inheritance-resolved view is computed and cached by the
:class:`~repro.core.schema.Schema`, which owns the hierarchy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import SchemaError
from .attribute import AttributeDef
from .method import MethodDef


class ClassDef:
    """A single class in the schema.

    Instances of this type are metadata only — they never hold object
    state.  Mutation (adding attributes, methods, superclasses) goes
    through the schema-evolution interface so invariants are enforced and
    caches invalidated in one place.
    """

    __slots__ = (
        "name",
        "superclasses",
        "own_attributes",
        "own_methods",
        "abstract",
        "doc",
        "versionable",
    )

    def __init__(
        self,
        name: str,
        superclasses: Sequence[str],
        attributes: Iterable[AttributeDef] = (),
        methods: Iterable[MethodDef] = (),
        abstract: bool = False,
        doc: str = "",
        versionable: bool = False,
    ) -> None:
        if not name or not all(part.isidentifier() for part in name.split(".")):
            raise SchemaError("class name %r is not a valid identifier" % (name,))
        self.name = name
        #: Direct superclasses in local precedence order.
        self.superclasses: List[str] = list(superclasses)
        self.own_attributes: Dict[str, AttributeDef] = {}
        self.own_methods: Dict[str, MethodDef] = {}
        #: Abstract classes cannot be instantiated (but can be queried,
        #: in which case the scope is their subclass hierarchy).
        self.abstract = bool(abstract)
        self.doc = doc
        #: When True, instances participate in the version-derivation
        #: mechanism of :mod:`repro.versions`.
        self.versionable = bool(versionable)

        for attr in attributes:
            self._add_own_attribute(attr)
        for meth in methods:
            self._add_own_method(meth)

    # -- internal mutators (called by Schema / schema evolution only) ----

    def _add_own_attribute(self, attr: AttributeDef) -> None:
        if attr.name in self.own_attributes:
            raise SchemaError(
                "class %s already defines attribute %r" % (self.name, attr.name)
            )
        if attr.defined_in is None:
            attr.defined_in = self.name
        self.own_attributes[attr.name] = attr

    def _add_own_method(self, meth: MethodDef) -> None:
        if meth.name in self.own_methods:
            raise SchemaError(
                "class %s already defines method %r" % (self.name, meth.name)
            )
        if meth.defined_in is None:
            meth.defined_in = self.name
        self.own_methods[meth.name] = meth

    def _drop_own_attribute(self, name: str) -> AttributeDef:
        try:
            return self.own_attributes.pop(name)
        except KeyError:
            raise SchemaError(
                "class %s does not define attribute %r" % (self.name, name)
            ) from None

    def _drop_own_method(self, name: str) -> MethodDef:
        try:
            return self.own_methods.pop(name)
        except KeyError:
            raise SchemaError(
                "class %s does not define method %r" % (self.name, name)
            ) from None

    # -- read API ----------------------------------------------------------

    def own_attribute(self, name: str) -> Optional[AttributeDef]:
        return self.own_attributes.get(name)

    def own_method(self, name: str) -> Optional[MethodDef]:
        return self.own_methods.get(name)

    def __repr__(self) -> str:
        return "<ClassDef %s(%s) attrs=%s methods=%s>" % (
            self.name,
            ", ".join(self.superclasses),
            sorted(self.own_attributes),
            sorted(self.own_methods),
        )
