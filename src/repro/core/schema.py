"""The schema: class registry, hierarchy, inheritance resolution, typing.

The schema owns the rooted DAG of classes (core concept 5), computes the
effective (inherited) attributes and methods of every class, enforces the
domain constraints of core concept 4 and supports dynamic extension: "the
class hierarchy must be dynamically extensible; that is, a new subclass
can be derived from one or more existing classes."

Structural schema *changes* beyond adding classes (the taxonomy of
[BANE87]) are implemented in :mod:`repro.evolution`; that module calls the
underscore-prefixed mutators here so cache invalidation stays in one
place.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
)

from ..errors import (
    AttributeNotFoundError,
    ClassNotFoundError,
    DuplicateClassError,
    MethodNotFoundError,
    SchemaError,
    TypeCheckError,
)
from .attribute import AttributeDef
from .inheritance import c3_linearize, detect_cycle, resolve_by_precedence
from .klass import ClassDef
from .method import MethodDef
from .oid import OID
from .primitives import (
    ANY_CLASS,
    BUILTIN_CLASSES,
    PRIMITIVE_TYPES,
    ROOT_CLASS,
    is_primitive_class,
    primitive_accepts,
)

#: Callback type used to look up the class of a referenced object when
#: type-checking OID-valued attributes.
DerefClass = Callable[[OID], Optional[str]]


class Schema:
    """Registry and resolver for the class hierarchy."""

    def __init__(self) -> None:
        self._classes: Dict[str, ClassDef] = {}
        self._direct_subclasses: Dict[str, Set[str]] = {}
        #: Monotonic counter bumped on every schema change; planners and
        #: caches compare it to detect staleness.
        self.version = 0
        self._mro_cache: Dict[str, List[str]] = {}
        self._attr_cache: Dict[str, Dict[str, AttributeDef]] = {}
        self._method_cache: Dict[str, Dict[str, MethodDef]] = {}
        self._listeners: List[Callable[[str], None]] = []
        #: Validators for user-defined *value* domains (abstract data
        #: types, Section 5.5): domain name -> predicate over raw values.
        #: An ADT class stores its instances inline (encoded as storable
        #: values) rather than as references.
        self._value_domains: Dict[str, Callable[[Any], bool]] = {}
        self._install_builtins()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _install_builtins(self) -> None:
        root = ClassDef(ROOT_CLASS, superclasses=(), doc="Root of the class hierarchy.")
        self._classes[ROOT_CLASS] = root
        self._direct_subclasses[ROOT_CLASS] = set()
        for name in BUILTIN_CLASSES:
            if name == ROOT_CLASS:
                continue
            doc = "Primitive domain class." if is_primitive_class(name) else "Wildcard domain."
            cls = ClassDef(name, superclasses=(ROOT_CLASS,), doc=doc)
            self._classes[name] = cls
            self._direct_subclasses[name] = set()
            self._direct_subclasses[ROOT_CLASS].add(name)

    def define_class(
        self,
        name: str,
        superclasses: Sequence[str] = (ROOT_CLASS,),
        attributes: Iterable[AttributeDef] = (),
        methods: Iterable[MethodDef] = (),
        abstract: bool = False,
        doc: str = "",
        versionable: bool = False,
    ) -> ClassDef:
        """Add a new class as a subclass of ``superclasses``.

        The superclasses must already exist, so adding a class can never
        create a cycle.  Attribute names may shadow inherited ones (that
        is redefinition, core concept 5); they may not collide within the
        new class itself.
        """
        if name in self._classes:
            raise DuplicateClassError("class %r is already defined" % (name,))
        if not superclasses:
            raise SchemaError("class %r must have at least one superclass" % (name,))
        supers = list(dict.fromkeys(superclasses))  # dedupe, keep order
        for sup in supers:
            existing = self._classes.get(sup)
            if existing is None:
                raise ClassNotFoundError(
                    "superclass %r of %r is not defined" % (sup, name)
                )
            if is_primitive_class(sup) or sup == ANY_CLASS:
                raise SchemaError(
                    "cannot subclass primitive/wildcard class %r" % (sup,)
                )
        cls = ClassDef(
            name,
            superclasses=supers,
            attributes=attributes,
            methods=methods,
            abstract=abstract,
            doc=doc,
            versionable=versionable,
        )
        self._classes[name] = cls
        self._direct_subclasses[name] = set()
        for sup in supers:
            self._direct_subclasses[sup].add(name)
        self._bump(name)
        # Validate linearizability immediately so a bad diamond fails at
        # definition time, not first use.
        try:
            self.mro(name)
        except SchemaError:
            self._remove_class_entry(name)
            raise
        return cls

    # Low-level hierarchy mutators used by schema evolution
    # (repro.evolution); they keep the subclass map and caches coherent
    # but do NOT validate invariants — callers must.

    def _add_superclass_edge(self, class_name: str, superclass: str) -> None:
        cls = self.get_class(class_name)
        self.get_class(superclass)
        if superclass in cls.superclasses:
            raise SchemaError(
                "%s is already a direct superclass of %s" % (superclass, class_name)
            )
        cls.superclasses.append(superclass)
        self._direct_subclasses[superclass].add(class_name)
        self._bump(class_name)

    def _remove_superclass_edge(self, class_name: str, superclass: str) -> None:
        cls = self.get_class(class_name)
        if superclass not in cls.superclasses:
            raise SchemaError(
                "%s is not a direct superclass of %s" % (superclass, class_name)
            )
        cls.superclasses.remove(superclass)
        self._direct_subclasses[superclass].discard(class_name)
        if not cls.superclasses:
            # Re-root orphaned classes at Object (hierarchy stays rooted).
            cls.superclasses.append(ROOT_CLASS)
            self._direct_subclasses[ROOT_CLASS].add(class_name)
        self._bump(class_name)

    def _rename_class_entry(self, old: str, new: str) -> None:
        if new in self._classes:
            raise DuplicateClassError("class %r is already defined" % (new,))
        cls = self._classes.pop(old)
        cls.name = new
        self._classes[new] = cls
        self._direct_subclasses[new] = self._direct_subclasses.pop(old)
        for other in self._classes.values():
            other.superclasses = [new if s == old else s for s in other.superclasses]
            for attr in other.own_attributes.values():
                if attr.domain == old:
                    attr.domain = new
                if attr.defined_in == old:
                    attr.defined_in = new
            for meth in other.own_methods.values():
                if meth.defined_in == old:
                    meth.defined_in = new
        for subs in self._direct_subclasses.values():
            if old in subs:
                subs.discard(old)
                subs.add(new)
        self._bump(new)

    def _remove_class_entry(self, name: str) -> None:
        cls = self._classes.pop(name)
        for sup in cls.superclasses:
            self._direct_subclasses.get(sup, set()).discard(name)
        self._direct_subclasses.pop(name, None)
        self._bump(name)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def get_class(self, name: str) -> ClassDef:
        try:
            return self._classes[name]
        except KeyError:
            raise ClassNotFoundError("class %r is not defined" % (name,)) from None

    def classes(self) -> Iterator[ClassDef]:
        """All classes, builtins included, in definition order."""
        return iter(list(self._classes.values()))

    def user_classes(self) -> Iterator[ClassDef]:
        """All classes except the builtin root/primitive/wildcard classes."""
        builtin = set(BUILTIN_CLASSES)
        return (c for c in self.classes() if c.name not in builtin)

    def mro(self, name: str) -> List[str]:
        """Linearized ancestors of ``name``, most specific first."""
        cached = self._mro_cache.get(name)
        if cached is None:
            self.get_class(name)  # raise ClassNotFoundError early
            cached = c3_linearize(name, lambda n: self.get_class(n).superclasses)
            self._mro_cache[name] = cached
        return list(cached)

    def is_subclass(self, name: str, ancestor: str) -> bool:
        """True when ``name`` equals ``ancestor`` or inherits from it."""
        if ancestor == ANY_CLASS:
            return True
        return ancestor in self.mro(name)

    def direct_subclasses(self, name: str) -> List[str]:
        self.get_class(name)
        return sorted(self._direct_subclasses.get(name, ()))

    def subclasses(self, name: str, transitive: bool = True) -> List[str]:
        """Subclasses of ``name`` (excluding ``name`` itself), sorted."""
        if not transitive:
            return self.direct_subclasses(name)
        seen: Set[str] = set()
        stack = list(self._direct_subclasses.get(name, ()))
        self.get_class(name)
        while stack:
            sub = stack.pop()
            if sub in seen:
                continue
            seen.add(sub)
            stack.extend(self._direct_subclasses.get(sub, ()))
        return sorted(seen)

    def hierarchy_of(self, name: str) -> List[str]:
        """``name`` followed by all its transitive subclasses.

        This is the evaluation scope of a hierarchy-scoped query and the
        key range of a class-hierarchy index.
        """
        return [name] + self.subclasses(name)

    def superclasses(self, name: str, transitive: bool = True) -> List[str]:
        if not transitive:
            return list(self.get_class(name).superclasses)
        return [c for c in self.mro(name)[1:]]

    # ------------------------------------------------------------------
    # effective members (inheritance-resolved)
    # ------------------------------------------------------------------

    def attributes(self, name: str) -> Dict[str, AttributeDef]:
        """Effective attributes of ``name`` (own + inherited, resolved)."""
        cached = self._attr_cache.get(name)
        if cached is None:
            mro = self.mro(name)
            cached = resolve_by_precedence(
                mro, lambda cls: self.get_class(cls).own_attributes
            )
            self._attr_cache[name] = cached  # type: ignore[assignment]
        return dict(cached)

    def attribute(self, class_name: str, attr_name: str) -> AttributeDef:
        attr = self.attributes(class_name).get(attr_name)
        if attr is None:
            raise AttributeNotFoundError(
                "class %s has no attribute %r" % (class_name, attr_name)
            )
        return attr

    def has_attribute(self, class_name: str, attr_name: str) -> bool:
        return attr_name in self.attributes(class_name)

    def methods(self, name: str) -> Dict[str, MethodDef]:
        """Effective methods of ``name`` (own + inherited, resolved)."""
        cached = self._method_cache.get(name)
        if cached is None:
            mro = self.mro(name)
            cached = resolve_by_precedence(
                mro, lambda cls: self.get_class(cls).own_methods
            )
            self._method_cache[name] = cached  # type: ignore[assignment]
        return dict(cached)

    def resolve_method(self, class_name: str, selector: str) -> MethodDef:
        """Late binding: find the method for ``selector`` along the MRO."""
        meth = self.methods(class_name).get(selector)
        if meth is None:
            raise MethodNotFoundError(
                "message %r not understood by class %s (searched %s)"
                % (selector, class_name, " -> ".join(self.mro(class_name)))
            )
        return meth

    def resolve_method_above(
        self, class_name: str, selector: str, above: str
    ) -> MethodDef:
        """Resolve ``selector`` starting strictly *after* class ``above``.

        This is the dispatch primitive behind ``super``-style sends from a
        redefined method to the implementation it shadows.
        """
        mro = self.mro(class_name)
        if above not in mro:
            raise MethodNotFoundError(
                "class %s is not an ancestor of %s" % (above, class_name)
            )
        for cls in mro[mro.index(above) + 1 :]:
            meth = self.get_class(cls).own_method(selector)
            if meth is not None:
                return meth
        raise MethodNotFoundError(
            "no implementation of %r above class %s in %s"
            % (selector, above, class_name)
        )

    def defines_or_inherits_method(self, class_name: str, selector: str) -> bool:
        return selector in self.methods(class_name)

    # ------------------------------------------------------------------
    # typing / instance validation
    # ------------------------------------------------------------------

    def check_value(
        self,
        attr: AttributeDef,
        value: Any,
        deref_class: Optional[DerefClass] = None,
    ) -> None:
        """Validate one value against an attribute's domain.

        ``deref_class`` resolves an OID to the class name of the object it
        identifies; when omitted, reference values are accepted as long as
        the domain is a non-primitive class (structural check only).
        """
        if attr.multi:
            if not isinstance(value, list):
                raise TypeCheckError(
                    "attribute %r is set-valued; expected a list, got %r"
                    % (attr.name, type(value).__name__)
                )
            for element in value:
                self._check_single(attr, element, deref_class)
            if attr.required and not value:
                raise TypeCheckError(
                    "attribute %r is required; empty list not allowed" % (attr.name,)
                )
            return
        if value is None:
            if attr.required:
                raise TypeCheckError("attribute %r is required" % (attr.name,))
            return
        self._check_single(attr, value, deref_class)

    def _check_single(
        self, attr: AttributeDef, value: Any, deref_class: Optional[DerefClass]
    ) -> None:
        domain = attr.domain
        if value is None:
            raise TypeCheckError(
                "attribute %r: None is not allowed inside a set value" % (attr.name,)
            )
        if domain == ANY_CLASS:
            return
        if isinstance(value, OID):
            if is_primitive_class(domain):
                raise TypeCheckError(
                    "attribute %r expects primitive %s, got reference %r"
                    % (attr.name, domain, value)
                )
            if deref_class is not None:
                ref_class = deref_class(value)
                if ref_class is None:
                    raise TypeCheckError(
                        "attribute %r references unknown object %r"
                        % (attr.name, value)
                    )
                if not self.is_subclass(ref_class, domain):
                    raise TypeCheckError(
                        "attribute %r expects an instance of %s (or subclass); "
                        "%r is a %s" % (attr.name, domain, value, ref_class)
                    )
            return
        # Non-reference value: must satisfy a primitive domain, or the
        # domain must itself be primitive-compatible.
        if is_primitive_class(domain):
            if not primitive_accepts(domain, value):
                raise TypeCheckError(
                    "attribute %r expects %s, got %r of type %s"
                    % (attr.name, domain, value, type(value).__name__)
                )
            return
        validator = self._value_domains.get(domain)
        if validator is not None:
            if not validator(value):
                raise TypeCheckError(
                    "attribute %r: %r is not a valid %s value"
                    % (attr.name, value, domain)
                )
            return
        if domain == ROOT_CLASS:
            # Object-typed attributes accept any primitive or reference.
            if isinstance(value, (bool, int, float, str, bytes)):
                return
            raise TypeCheckError(
                "attribute %r expects an object value, got %r" % (attr.name, value)
            )
        raise TypeCheckError(
            "attribute %r expects an instance of class %s; got primitive %r"
            % (attr.name, domain, value)
        )

    def default_state(self, class_name: str) -> Dict[str, Any]:
        """Fresh attribute dict populated with declared defaults."""
        return {
            name: attr.default_value()
            for name, attr in self.attributes(class_name).items()
        }

    def validate_state(
        self,
        class_name: str,
        values: Dict[str, Any],
        deref_class: Optional[DerefClass] = None,
        partial: bool = False,
    ) -> None:
        """Validate a full (or partial) attribute dict for ``class_name``.

        When ``partial`` is False every required attribute must be present
        and non-None; unknown attribute names are always rejected.
        """
        cls = self.get_class(class_name)
        if cls.abstract:
            raise TypeCheckError(
                "class %s is abstract and cannot be instantiated" % (class_name,)
            )
        declared = self.attributes(class_name)
        for name, value in values.items():
            attr = declared.get(name)
            if attr is None:
                raise AttributeNotFoundError(
                    "class %s has no attribute %r" % (class_name, name)
                )
            self.check_value(attr, value, deref_class)
        if not partial:
            for name, attr in declared.items():
                if attr.required and name not in values:
                    raise TypeCheckError(
                        "attribute %r of class %s is required" % (name, class_name)
                    )

    # ------------------------------------------------------------------
    # change notification & catalog persistence
    # ------------------------------------------------------------------

    def register_value_domain(
        self, name: str, validator: Callable[[Any], bool]
    ) -> None:
        """Declare a user-defined value domain (ADT).

        Creates the domain as a class (so it can appear in attribute
        declarations and the hierarchy) and installs ``validator`` to
        accept the encoded value representation.
        """
        if not self.has_class(name):
            self.define_class(name, superclasses=(ROOT_CLASS,), abstract=True,
                              doc="User-defined value domain (ADT).")
        self._value_domains[name] = validator

    def is_value_domain(self, name: str) -> bool:
        return name in self._value_domains

    def on_change(self, callback: Callable[[str], None]) -> None:
        """Register a callback invoked with the affected class name."""
        self._listeners.append(callback)

    def _bump(self, class_name: str) -> None:
        """Invalidate caches after any schema mutation."""
        self.version += 1
        self._mro_cache.clear()
        self._attr_cache.clear()
        self._method_cache.clear()
        for listener in self._listeners:
            listener(class_name)

    def to_dict(self) -> Dict[str, Any]:
        """Serializable catalog (methods are recorded by name only).

        Method bodies are Python callables supplied by the application at
        open time (the ZODB model); :meth:`bind_methods` re-attaches them.
        """
        out: Dict[str, Any] = {"version": self.version, "classes": []}
        builtin = set(BUILTIN_CLASSES)
        for cls in self._classes.values():
            if cls.name in builtin:
                continue
            out["classes"].append(
                {
                    "name": cls.name,
                    "superclasses": list(cls.superclasses),
                    "abstract": cls.abstract,
                    "doc": cls.doc,
                    "versionable": cls.versionable,
                    "attributes": [
                        {
                            "name": a.name,
                            "domain": a.domain,
                            "multi": a.multi,
                            "default": a.default,
                            "required": a.required,
                            "composite": a.composite,
                            "exclusive": a.exclusive,
                            "dependent": a.dependent,
                        }
                        for a in cls.own_attributes.values()
                    ],
                    "methods": sorted(cls.own_methods),
                }
            )
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Schema":
        """Rebuild a schema from :meth:`to_dict` output.

        Classes are defined in an order that satisfies superclass
        dependencies regardless of catalog order.
        """
        schema = cls()
        pending = {entry["name"]: entry for entry in data.get("classes", [])}
        progress = True
        while pending and progress:
            progress = False
            for name in list(pending):
                entry = pending[name]
                if all(schema.has_class(sup) for sup in entry["superclasses"]):
                    schema.define_class(
                        name,
                        superclasses=entry["superclasses"],
                        attributes=[
                            AttributeDef(
                                a["name"],
                                domain=a["domain"],
                                multi=a["multi"],
                                default=a["default"],
                                required=a["required"],
                                composite=a.get("composite", False),
                                exclusive=a.get("exclusive", False),
                                dependent=a.get("dependent", False),
                            )
                            for a in entry["attributes"]
                        ],
                        abstract=entry.get("abstract", False),
                        doc=entry.get("doc", ""),
                        versionable=entry.get("versionable", False),
                    )
                    del pending[name]
                    progress = True
        if pending:
            raise SchemaError(
                "catalog contains classes with unsatisfiable superclasses: %s"
                % sorted(pending)
            )
        return schema

    def bind_methods(self, class_name: str, methods: Iterable[MethodDef]) -> None:
        """Attach (or re-attach) method implementations to a class."""
        cls = self.get_class(class_name)
        for meth in methods:
            cls.own_methods.pop(meth.name, None)
            cls._add_own_method(meth)
        self._bump(class_name)

    def check_no_cycle(self) -> None:
        """Raise :class:`~repro.errors.CycleError` if the DAG is broken."""
        cycle = detect_cycle(
            self._classes, lambda n: self.get_class(n).superclasses
        )
        if cycle:
            from ..errors import CycleError

            raise CycleError("class graph cycle: %s" % " -> ".join(cycle))
