"""Class-hierarchy linearization and conflict resolution.

Core concept 5 of the paper: classes form a rooted directed acyclic graph;
a class inherits all attributes and methods from its direct and indirect
ancestors, and multiple-inheritance name conflicts must be resolved
deterministically.  kimdb resolves conflicts the way ORION did — by the
user-specified order of superclasses — formalized here as C3
linearization (the same algorithm CLOS-descendant systems and Python use),
which respects both local precedence order and monotonicity.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Set

from ..errors import CycleError, InheritanceConflictError


def c3_linearize(
    name: str,
    parents_of: Callable[[str], Sequence[str]],
) -> List[str]:
    """Compute the C3 linearization (MRO) of class ``name``.

    ``parents_of`` maps a class name to its direct superclasses in local
    precedence order.  The result starts with ``name`` and ends with the
    hierarchy root.  Raises :class:`InheritanceConflictError` when no
    monotonic linearization exists.
    """
    memo: Dict[str, List[str]] = {}
    in_progress: Set[str] = set()

    def linearize(cls: str) -> List[str]:
        cached = memo.get(cls)
        if cached is not None:
            return cached
        if cls in in_progress:
            raise CycleError("class graph contains a cycle through %r" % (cls,))
        in_progress.add(cls)
        parents = list(parents_of(cls))
        if not parents:
            result = [cls]
        else:
            sequences = [linearize(p) for p in parents]
            result = [cls] + _merge(sequences + [parents], cls)
        in_progress.discard(cls)
        memo[cls] = result
        return result

    return linearize(name)


def _merge(sequences: List[List[str]], context: str) -> List[str]:
    """C3 merge: repeatedly take a head that appears in no other tail."""
    sequences = [list(seq) for seq in sequences if seq]
    result: List[str] = []
    while sequences:
        for seq in sequences:
            head = seq[0]
            in_some_tail = any(head in other[1:] for other in sequences)
            if not in_some_tail:
                break
        else:
            raise InheritanceConflictError(
                "cannot linearize superclasses of %r: inconsistent hierarchy "
                "(heads: %s)" % (context, sorted({s[0] for s in sequences}))
            )
        result.append(head)
        sequences = [
            [item for item in seq if item != head] for seq in sequences
        ]
        sequences = [seq for seq in sequences if seq]
    return result


def detect_cycle(
    names: Iterable[str],
    parents_of: Callable[[str], Sequence[str]],
) -> List[str]:
    """Return one cycle in the class graph as a list of names, or []."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {}
    stack_path: List[str] = []

    def visit(node: str) -> List[str]:
        color[node] = GRAY
        stack_path.append(node)
        for parent in parents_of(node):
            state = color.get(parent, WHITE)
            if state == GRAY:
                idx = stack_path.index(parent)
                return stack_path[idx:] + [parent]
            if state == WHITE:
                found = visit(parent)
                if found:
                    return found
        stack_path.pop()
        color[node] = BLACK
        return []

    for name in names:
        if color.get(name, WHITE) == WHITE:
            found = visit(name)
            if found:
                return found
    return []


def resolve_by_precedence(
    mro: Sequence[str],
    own_of: Callable[[str], Dict[str, object]],
) -> Dict[str, object]:
    """Flatten per-class member dicts along an MRO, first definition wins.

    Walks the MRO from most specific to least specific; a member defined
    (or redefined) in an earlier class shadows any same-named member from
    later classes.  This realizes the paper's rule that a subclass "may
    redefine some of the inherited behavior and attributes".
    """
    resolved: Dict[str, object] = {}
    for cls in mro:
        for member_name, member in own_of(cls).items():
            if member_name not in resolved:
                resolved[member_name] = member
    return resolved
