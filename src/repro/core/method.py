"""Method definitions and message dispatch support.

Core concepts 2 and 6 of the paper: the behavior of an object is a set of
methods, invoked only by *message passing* through the class's declared
interface, with *run-time (late) binding* of a message to the method —
"if a message sent to an instance of a class is undefined for the class,
it is sent up the class hierarchy to determine the class in which it is
defined".

kimdb methods are Python callables registered on a class.  The callable
receives an :class:`~repro.core.obj.ObjectHandle` as its first argument
(the receiver), giving it encapsulated access to the receiver's state and
the ability to send further messages.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import SchemaError


class MethodDef:
    """Declaration of one method of a class.

    Parameters
    ----------
    name:
        Message selector.  Must be a valid identifier.
    fn:
        ``fn(receiver, *args, **kwargs)`` where ``receiver`` is an
        :class:`~repro.core.obj.ObjectHandle`.
    doc:
        Human-readable description, surfaced by schema browsing tools.
    """

    __slots__ = ("name", "fn", "doc", "defined_in")

    def __init__(self, name: str, fn: Callable[..., Any], doc: str = "") -> None:
        if not name.isidentifier():
            raise SchemaError("method name %r is not a valid identifier" % (name,))
        if not callable(fn):
            raise SchemaError("method %r: fn must be callable" % (name,))
        self.name = name
        self.fn = fn
        self.doc = doc or (getattr(fn, "__doc__", "") or "")
        #: Name of the class that defined this method; used by ``super_send``
        #: and by schema browsing.  Filled in by the schema.
        self.defined_in: Optional[str] = None

    def invoke(self, receiver: Any, *args: Any, **kwargs: Any) -> Any:
        """Call the underlying implementation on ``receiver``."""
        return self.fn(receiver, *args, **kwargs)

    def clone(self) -> "MethodDef":
        copy = MethodDef(self.name, self.fn, self.doc)
        copy.defined_in = self.defined_in
        return copy

    def __repr__(self) -> str:
        origin = " from %s" % self.defined_in if self.defined_in else ""
        return "<MethodDef %s%s>" % (self.name, origin)


def method(name: Optional[str] = None, doc: str = ""):
    """Decorator producing a :class:`MethodDef` from a plain function.

    Usage::

        @method()
        def display(receiver):
            return "Shape at %s" % (receiver["center"],)

        schema.define_class("Shape", methods=[display])
    """

    def wrap(fn: Callable[..., Any]) -> MethodDef:
        return MethodDef(name or fn.__name__, fn, doc)

    return wrap
