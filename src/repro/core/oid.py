"""Object identifiers.

Core concept 1 of the paper: "Any real-world entity is uniformly modeled
as an object, and is associated with a unique identifier."  kimdb OIDs are
logical (they never encode a physical address; the object directory maps
OID -> page location), immutable, hashable and totally ordered so they can
serve as B+-tree keys and as deterministic tie-breakers in query results.
"""

from __future__ import annotations

import itertools
from typing import Iterator


class OID:
    """A logical object identifier.

    OIDs compare by their integer value only; the optional ``hint`` (the
    class name at creation time) exists purely to make debug output
    readable and is ignored by equality and hashing, because an object's
    identity must survive schema evolution that migrates instances.
    """

    __slots__ = ("value", "hint")

    def __init__(self, value: int, hint: str = "") -> None:
        if value < 0:
            raise ValueError("OID value must be non-negative, got %r" % (value,))
        self.value = value
        self.hint = hint

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OID) and other.value == self.value

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __lt__(self, other: "OID") -> bool:
        if not isinstance(other, OID):
            return NotImplemented
        return self.value < other.value

    def __le__(self, other: "OID") -> bool:
        if not isinstance(other, OID):
            return NotImplemented
        return self.value <= other.value

    def __gt__(self, other: "OID") -> bool:
        if not isinstance(other, OID):
            return NotImplemented
        return self.value > other.value

    def __ge__(self, other: "OID") -> bool:
        if not isinstance(other, OID):
            return NotImplemented
        return self.value >= other.value

    def __hash__(self) -> int:
        return hash(("OID", self.value))

    def __repr__(self) -> str:
        if self.hint:
            return "@%d<%s>" % (self.value, self.hint)
        return "@%d" % (self.value,)


class OIDGenerator:
    """Monotonic OID factory.

    The generator is resumable: a database re-opened from disk seeds the
    counter past the highest OID it finds in the object directory so that
    identifiers are never reused, even across process restarts.
    """

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)
        self._last = start - 1

    @property
    def last_issued(self) -> int:
        """The integer value of the most recently issued OID (0 if none)."""
        return self._last

    def next(self, hint: str = "") -> OID:
        """Issue a fresh OID, optionally tagged with a class-name hint."""
        self._last = next(self._counter)
        return OID(self._last, hint)

    def advance_past(self, value: int) -> None:
        """Ensure future OIDs are strictly greater than ``value``."""
        if value > self._last:
            self._counter = itertools.count(value + 1)
            self._last = value

    def issued(self) -> Iterator[int]:  # pragma: no cover - debugging aid
        """Iterate hypothetical future values without consuming them."""
        return itertools.count(self._last + 1)
