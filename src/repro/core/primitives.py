"""Primitive domain classes.

Core concept 4 of the paper: "The domain (type) of an attribute of a class
may be any class.  The domain class may be a primitive class, such as
integer, string, or boolean."  kimdb models primitives as leaf classes of
the hierarchy rooted at ``Object`` so that ``Any``-typed attributes, domain
checks and the class-hierarchy walk treat them uniformly with user classes.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple, Type

#: The root of the class hierarchy.  Every class, primitive or user-defined,
#: is a (possibly indirect) subclass of ``Object``.
ROOT_CLASS = "Object"

#: Wildcard domain accepting any value, including references.
ANY_CLASS = "Any"

#: Mapping of primitive class name -> accepted Python types.
#: ``Integer`` deliberately excludes ``bool`` (bool is a subclass of int in
#: Python but a distinct domain in the data model).
PRIMITIVE_TYPES: Dict[str, Tuple[Type[Any], ...]] = {
    "Integer": (int,),
    "Float": (float, int),
    "String": (str,),
    "Boolean": (bool,),
    "Bytes": (bytes,),
}

#: All class names predefined by the system, in definition order.
BUILTIN_CLASSES = (ROOT_CLASS, ANY_CLASS) + tuple(PRIMITIVE_TYPES)


def is_primitive_class(name: str) -> bool:
    """Return True if ``name`` names one of the primitive domain classes."""
    return name in PRIMITIVE_TYPES


def primitive_accepts(name: str, value: Any) -> bool:
    """Check a Python value against a primitive domain.

    ``Boolean`` only accepts bools; ``Integer`` accepts ints but not bools;
    ``Float`` accepts ints and floats (numeric widening, as in SQL).
    """
    accepted = PRIMITIVE_TYPES.get(name)
    if accepted is None:
        return False
    if name != "Boolean" and isinstance(value, bool):
        return False
    return isinstance(value, accepted)


def primitive_class_of(value: Any) -> str:
    """Return the primitive class name a Python value belongs to.

    Raises ``ValueError`` for values outside the primitive domains (e.g.
    OIDs, lists, None) — callers handle references and multi-values first.
    """
    if isinstance(value, bool):
        return "Boolean"
    if isinstance(value, int):
        return "Integer"
    if isinstance(value, float):
        return "Float"
    if isinstance(value, str):
        return "String"
    if isinstance(value, bytes):
        return "Bytes"
    raise ValueError("value %r has no primitive class" % (value,))
