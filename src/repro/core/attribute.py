"""Attribute definitions.

Core concept 2 of the paper: the state of an object is the set of values
of its attributes, each value is itself an object, and "an attribute of an
object may take on a single value or a set of values".  An
:class:`AttributeDef` therefore carries a *domain* (any class name, per
core concept 4 — including the defining class itself, which is how the
paper's cyclic aggregation graphs arise) and a multiplicity flag.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import SchemaError
from .primitives import ANY_CLASS

#: Sentinel distinguishing "no default" from "default is None".
NO_DEFAULT = object()


class AttributeDef:
    """Declaration of one attribute of a class.

    Parameters
    ----------
    name:
        Attribute name; must be a valid identifier.
    domain:
        Name of the class constraining values (``"Integer"``, ``"Company"``,
        ``"Any"``, ...).  References are checked against the domain class
        *and all its subclasses*, per the paper's generalization reading of
        a domain ("the attribute may take on as its values objects from the
        class Company and any direct or indirect subclass of Company").
    multi:
        When True the attribute is set-valued: its value is a list of
        values each individually conforming to ``domain``.
    default:
        Value assigned when an instance is created without this attribute.
        Defaults to ``None`` for single-valued and ``[]`` for multi-valued
        attributes.
    required:
        When True, ``None`` (or an empty list for multi-valued attributes)
        is rejected on store.
    composite / exclusive / dependent:
        Composite-object markers [KIM89c]: a composite attribute expresses
        a part-of relationship.  ``exclusive`` parts may belong to only one
        parent; ``dependent`` parts are deleted with their parent.
    """

    __slots__ = (
        "name",
        "domain",
        "multi",
        "default",
        "required",
        "composite",
        "exclusive",
        "dependent",
        "defined_in",
    )

    def __init__(
        self,
        name: str,
        domain: str = ANY_CLASS,
        multi: bool = False,
        default: Any = NO_DEFAULT,
        required: bool = False,
        composite: bool = False,
        exclusive: bool = False,
        dependent: bool = False,
    ) -> None:
        if not name.isidentifier():
            raise SchemaError("attribute name %r is not a valid identifier" % (name,))
        if name.startswith("_"):
            raise SchemaError(
                "attribute name %r may not start with an underscore "
                "(reserved for system attributes)" % (name,)
            )
        if (exclusive or dependent) and not composite:
            raise SchemaError(
                "attribute %r: exclusive/dependent flags require composite=True" % (name,)
            )
        self.name = name
        self.domain = domain
        self.multi = bool(multi)
        if default is NO_DEFAULT:
            default = [] if self.multi else None
        self.default = default
        self.required = bool(required)
        self.composite = bool(composite)
        self.exclusive = bool(exclusive)
        self.dependent = bool(dependent)
        #: Name of the class that introduced this attribute (filled in by
        #: the schema when the class is defined; inherited copies keep the
        #: originating class so provenance survives the hierarchy walk).
        self.defined_in: Optional[str] = None

    def default_value(self) -> Any:
        """A fresh copy of the default (lists are never shared)."""
        if isinstance(self.default, list):
            return list(self.default)
        return self.default

    def clone(self) -> "AttributeDef":
        """Deep-enough copy used when a subclass redefines an attribute."""
        copy = AttributeDef(
            self.name,
            domain=self.domain,
            multi=self.multi,
            default=self.default_value(),
            required=self.required,
            composite=self.composite,
            exclusive=self.exclusive,
            dependent=self.dependent,
        )
        copy.defined_in = self.defined_in
        return copy

    def __repr__(self) -> str:
        parts = ["%s: %s%s" % (self.name, "set of " if self.multi else "", self.domain)]
        if self.required:
            parts.append("required")
        if self.composite:
            kind = "exclusive" if self.exclusive else "shared"
            parts.append("composite(%s%s)" % (kind, ", dependent" if self.dependent else ""))
        return "<AttributeDef %s>" % " ".join(parts)
