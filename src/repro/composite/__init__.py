"""Composite objects: part-of semantics, exclusivity, delete propagation."""

from .model import CompositeManager, attach

__all__ = ["CompositeManager", "attach"]
