"""Composite objects [KIM89c].

A composite object is a rooted graph of *part-of* relationships declared
through composite attributes (``AttributeDef(composite=True)``).  The
revisited model distinguishes:

* **exclusive** parts — belong to at most one parent (ownership);
* **shared** parts — may be referenced by several composite parents;
* **dependent** parts — existence depends on the parent: deleting the
  parent cascades to them (unless another parent still holds them).

The manager enforces exclusivity on insert/update through database
pre-hooks, performs delete propagation through post-hooks, and offers
closure queries (``parts_of``) used by the clustering experiment E6.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..core.obj import ObjectState
from ..core.oid import OID
from ..errors import CompositeError

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database

#: (parent oid, attribute name) — one composite link endpoint.
Link = Tuple[OID, str]


class CompositeManager:
    """Tracks part-of links and enforces composite semantics."""

    def __init__(self, db: "Database") -> None:
        self.db = db
        #: part oid -> set of (parent oid, attribute) links referencing it.
        self._parents: Dict[OID, Set[Link]] = {}
        db.add_pre_hook(self._pre_hook)
        db.add_post_hook(self._post_hook)
        #: Re-entrancy guard for cascade deletes.
        self._cascading: Set[OID] = set()

    # -- link extraction -----------------------------------------------------

    def _composite_links(self, state: ObjectState) -> List[Tuple[str, OID, bool, bool]]:
        """(attribute, part oid, exclusive, dependent) for each link."""
        links = []
        attrs = self.db.schema.attributes(state.class_name)
        for name, attr in attrs.items():
            if not attr.composite:
                continue
            value = state.values.get(name)
            elements = value if isinstance(value, list) else [value]
            for element in elements:
                if isinstance(element, OID):
                    links.append((name, element, attr.exclusive, attr.dependent))
        return links

    # -- hooks ------------------------------------------------------------------

    def _pre_hook(self, kind: str, old, new) -> None:
        if kind == "delete":
            return
        state = new
        old_links = set()
        if kind == "update" and old is not None:
            old_links = {(name, part) for name, part, _x, _d in self._composite_links(old)}
        for name, part, exclusive, _dependent in self._composite_links(state):
            if not exclusive or (name, part) in old_links:
                continue
            holders = self._parents.get(part, set())
            foreign = {(p, a) for p, a in holders if p != state.oid}
            if foreign:
                parent, attr = sorted(foreign, key=lambda l: l[0].value)[0]
                raise CompositeError(
                    "object %r is already an exclusive part of %r via %r"
                    % (part, parent, attr)
                )

    def _post_hook(self, kind: str, old, new) -> None:
        if kind == "insert":
            self._add_links(new)
        elif kind == "update":
            self._drop_links(old)
            self._add_links(new)
        elif kind == "delete":
            self._drop_links(old)
            self._cascade(old)

    def _add_links(self, state: ObjectState) -> None:
        for name, part, _exclusive, _dependent in self._composite_links(state):
            self._parents.setdefault(part, set()).add((state.oid, name))

    def _drop_links(self, state: ObjectState) -> None:
        for name, part, _exclusive, _dependent in self._composite_links(state):
            holders = self._parents.get(part)
            if holders is not None:
                holders.discard((state.oid, name))
                if not holders:
                    del self._parents[part]

    def _cascade(self, state: ObjectState) -> None:
        """Delete dependent parts that no longer have any parent."""
        if getattr(self.db, "_in_rollback", False):
            # Rollback compensations replay each mutation individually;
            # cascading here would delete objects the rollback is about
            # to restore.
            return
        if state.oid in self._cascading:
            return
        for _name, part, _exclusive, dependent in self._composite_links(state):
            if not dependent:
                continue
            if self._parents.get(part):
                continue  # still held by another composite parent
            if not self.db.exists(part):
                continue
            self._cascading.add(state.oid)
            try:
                self.db.delete(part)
            finally:
                self._cascading.discard(state.oid)

    # -- queries -----------------------------------------------------------------

    def parents_of(self, part: OID) -> List[Link]:
        return sorted(self._parents.get(part, set()), key=lambda l: (l[0].value, l[1]))

    def is_part(self, oid: OID) -> bool:
        return bool(self._parents.get(oid))

    def parts_of(self, root: OID, transitive: bool = True) -> List[OID]:
        """Parts reachable from ``root`` through composite attributes."""
        out: List[OID] = []
        seen: Set[OID] = {root}
        frontier = [root]
        while frontier:
            current = frontier.pop()
            try:
                state = self.db.get_state(current)
            except Exception:
                continue
            for _name, part, _exclusive, _dependent in self._composite_links(state):
                if part in seen:
                    continue
                seen.add(part)
                out.append(part)
                if transitive:
                    frontier.append(part)
        return sorted(out)

    def composite_root_of(self, oid: OID) -> OID:
        """Walk parent links up to a root (ties broken by lowest OID)."""
        current = oid
        seen = {current}
        while True:
            parents = self.parents_of(current)
            parents = [link for link in parents if link[0] not in seen]
            if not parents:
                return current
            current = parents[0][0]
            seen.add(current)

    # -- the composite object as a unit [KIM89c] --------------------------

    def lock_composite(self, root: OID, write: bool = False) -> int:
        """Lock a whole composite object (root + transitive parts).

        [KIM89c] treats the composite object as a unit of locking: a
        designer working on an assembly locks the assembly, not each
        part.  Locks are taken in OID order to avoid deadlocks between
        two transactions locking overlapping composites.  Requires an
        active transaction; returns the number of objects locked.
        """
        txn = self.db.txns.current
        if txn is None:
            raise CompositeError(
                "composite locking requires an active transaction"
            )
        members = sorted([root] + self.parts_of(root))
        for oid in members:
            self.db._lock(txn, oid, self.db.class_of(oid), write=write)
        return len(members)

    def checkout_composite(self, workspace, root: OID):
        """Check a whole composite object out into a private workspace."""
        members = [root] + self.parts_of(root)
        return workspace.checkout(members)

    def delete_composite(self, root: OID) -> int:
        """Delete a composite object and every *exclusive* part.

        Unlike plain :meth:`Database.delete` (which cascades only along
        dependent attributes), this removes the full exclusive closure —
        the "delete the assembly" operation.  Shared parts survive.
        Returns the number of objects deleted.
        """
        exclusive: List[OID] = []
        seen = {root}
        frontier = [root]
        while frontier:
            current = frontier.pop()
            try:
                state = self.db.get_state(current)
            except Exception:
                continue
            for _name, part, is_exclusive, _dep in self._composite_links(state):
                if part in seen or not is_exclusive:
                    continue
                seen.add(part)
                exclusive.append(part)
                frontier.append(part)
        with self.db._auto_txn():
            # Plain delete already cascades along *dependent* composite
            # attributes; the explicit pass catches exclusive parts that
            # were not marked dependent.
            self.db.delete(root)
            for part in exclusive:
                if self.db.exists(part):
                    self.db.delete(part)
        return 1 + sum(1 for part in exclusive if not self.db.exists(part))

    def rebuild(self) -> None:
        """Re-derive all links from stored data (after bulk loads)."""
        self._parents.clear()
        for class_def in self.db.schema.user_classes():
            for state in self.db.storage.scan_class(class_def.name):
                self._add_links(state)


def attach(db: "Database") -> CompositeManager:
    manager = CompositeManager(db)
    manager.rebuild()
    db.composites = manager
    return manager
