"""Schema change operations — the [BANE87] taxonomy.

Three groups of changes, all validated against the invariants of
:mod:`repro.evolution.invariants`:

1. changes to the contents of a class: add / drop / rename attributes
   and methods;
2. changes to hierarchy edges: add / drop a superclass;
3. changes to nodes: add / drop / rename a class, migrate instances.

Instance handling follows ORION's *lazy coercion* strategy: adding or
dropping an attribute is a metadata-only operation — stored records are
coerced to the current class definition when loaded (experiment E12).
Renames and class drops rewrite eagerly because the stored names would
otherwise be unrecoverable.

Every change lands through ``Schema._bump``, which bumps the schema
version and notifies listeners — in particular the plan cache
(:mod:`repro.analysis.plancache`), which eagerly purges every cached
plan: a plan compiled against the old class definition must never run
against the new one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from ..core.attribute import AttributeDef
from ..core.method import MethodDef
from ..core.obj import ObjectState
from ..errors import SchemaError, SchemaEvolutionError
from .invariants import check_all

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database


class SchemaEvolution:
    """Change-operation executor bound to one database."""

    def __init__(self, db: "Database") -> None:
        self.db = db
        self.schema = db.schema
        #: Audit trail of applied operations (operation, arguments).
        self.log: List[str] = []

    # -- helpers ------------------------------------------------------------

    def _checked(self, description: str, apply: Callable[[], None], rollback: Callable[[], None]) -> None:
        """Apply a change, validate invariants, roll back on violation."""
        apply()
        try:
            check_all(self.schema)
        except SchemaEvolutionError:
            rollback()
            raise
        self.log.append(description)

    def _rebuild_indexes_on(self, class_name: str) -> None:
        for index in self.db.indexes.indexes_on(class_name):
            self.db.indexes.rebuild(index.name)

    def _rewrite_instances(
        self, class_name: str, transform: Callable[[ObjectState], ObjectState]
    ) -> int:
        """Eagerly rewrite every stored instance of a class hierarchy."""
        rewritten = 0
        for cls in self.schema.hierarchy_of(class_name):
            for state in list(self.db.storage.scan_class(cls)):
                new_state = transform(state.copy())
                self.db.storage.overwrite(new_state)
                rewritten += 1
        return rewritten

    # -- group 1: class contents ------------------------------------------------

    def add_attribute(self, class_name: str, attr: AttributeDef) -> None:
        """Metadata-only; instances gain the default lazily on load."""
        cls = self.schema.get_class(class_name)

        def apply() -> None:
            cls._add_own_attribute(attr)
            self.schema._bump(class_name)

        def rollback() -> None:
            cls._drop_own_attribute(attr.name)
            self.schema._bump(class_name)

        self._checked("add_attribute %s.%s" % (class_name, attr.name), apply, rollback)

    def drop_attribute(self, class_name: str, attr_name: str) -> None:
        """Metadata-only; stored values are dropped lazily on load."""
        cls = self.schema.get_class(class_name)
        dropped = cls.own_attribute(attr_name)
        if dropped is None:
            raise SchemaEvolutionError(
                "class %s does not define attribute %r (it may be inherited; "
                "drop it on the defining class)" % (class_name, attr_name)
            )
        # Refuse to break existing indexes silently.
        for index in self.db.indexes.all_indexes():
            if class_name in index.maintained_classes() and attr_name in index.path:
                raise SchemaEvolutionError(
                    "attribute %s.%s is used by index %r; drop the index first"
                    % (class_name, attr_name, index.name)
                )

        def apply() -> None:
            cls._drop_own_attribute(attr_name)
            self.schema._bump(class_name)

        def rollback() -> None:
            cls._add_own_attribute(dropped)
            self.schema._bump(class_name)

        self._checked("drop_attribute %s.%s" % (class_name, attr_name), apply, rollback)

    def rename_attribute(self, class_name: str, old_name: str, new_name: str) -> int:
        """Eager: renames the definition and rewrites stored instances.

        Returns the number of instances rewritten.
        """
        cls = self.schema.get_class(class_name)
        attr = cls.own_attribute(old_name)
        if attr is None:
            raise SchemaEvolutionError(
                "class %s does not define attribute %r" % (class_name, old_name)
            )
        renamed = attr.clone()
        renamed.name = new_name
        renamed.defined_in = attr.defined_in

        def apply() -> None:
            cls._drop_own_attribute(old_name)
            cls._add_own_attribute(renamed)
            self.schema._bump(class_name)

        def rollback() -> None:
            cls._drop_own_attribute(new_name)
            cls._add_own_attribute(attr)
            self.schema._bump(class_name)

        self._checked(
            "rename_attribute %s.%s -> %s" % (class_name, old_name, new_name),
            apply,
            rollback,
        )

        def transform(state: ObjectState) -> ObjectState:
            if old_name in state.values:
                state.values[new_name] = state.values.pop(old_name)
            return state

        count = self._rewrite_instances(class_name, transform)
        self._rebuild_indexes_on(class_name)
        return count

    def change_domain(
        self, class_name: str, attr_name: str, new_domain: str, validate: bool = True
    ) -> int:
        """Change an attribute's domain.

        With ``validate=True`` (default) every stored instance of the
        hierarchy is checked against the new domain first; the change is
        refused (nothing modified) if any value would become ill-typed —
        domain changes must not invalidate existing data silently.
        Returns the number of instances validated.
        """
        cls = self.schema.get_class(class_name)
        attr = cls.own_attribute(attr_name)
        if attr is None:
            raise SchemaEvolutionError(
                "class %s does not define attribute %r" % (class_name, attr_name)
            )
        if new_domain != "Any" and not self.schema.has_class(new_domain):
            raise SchemaEvolutionError("unknown domain class %r" % (new_domain,))
        trial = attr.clone()
        trial.domain = new_domain
        checked = 0
        if validate:
            for cls_name in self.schema.hierarchy_of(class_name):
                for state in self.db.storage.scan_class(cls_name):
                    value = state.values.get(attr_name)
                    if value is None or (isinstance(value, list) and not value):
                        continue
                    try:
                        self.schema.check_value(trial, value, self.db._deref_class)
                    except Exception as exc:
                        raise SchemaEvolutionError(
                            "instance %r violates new domain %s for %s.%s: %s"
                            % (state.oid, new_domain, class_name, attr_name, exc)
                        ) from exc
                    checked += 1
        old_domain = attr.domain

        def apply() -> None:
            attr.domain = new_domain
            self.schema._bump(class_name)

        def rollback() -> None:
            attr.domain = old_domain
            self.schema._bump(class_name)

        self._checked(
            "change_domain %s.%s: %s -> %s"
            % (class_name, attr_name, old_domain, new_domain),
            apply,
            rollback,
        )
        return checked

    def change_default(self, class_name: str, attr_name: str, default) -> None:
        cls = self.schema.get_class(class_name)
        attr = cls.own_attribute(attr_name)
        if attr is None:
            raise SchemaEvolutionError(
                "class %s does not define attribute %r" % (class_name, attr_name)
            )
        attr.default = default
        self.schema._bump(class_name)
        self.log.append("change_default %s.%s" % (class_name, attr_name))

    def add_method(self, class_name: str, meth: MethodDef) -> None:
        cls = self.schema.get_class(class_name)

        def apply() -> None:
            cls._add_own_method(meth)
            self.schema._bump(class_name)

        def rollback() -> None:
            cls._drop_own_method(meth.name)
            self.schema._bump(class_name)

        self._checked("add_method %s.%s" % (class_name, meth.name), apply, rollback)

    def drop_method(self, class_name: str, meth_name: str) -> None:
        cls = self.schema.get_class(class_name)
        dropped = cls.own_method(meth_name)
        if dropped is None:
            raise SchemaEvolutionError(
                "class %s does not define method %r" % (class_name, meth_name)
            )

        def apply() -> None:
            cls._drop_own_method(meth_name)
            self.schema._bump(class_name)

        def rollback() -> None:
            cls._add_own_method(dropped)
            self.schema._bump(class_name)

        self._checked("drop_method %s.%s" % (class_name, meth_name), apply, rollback)

    # -- group 2: hierarchy edges ---------------------------------------------

    def add_superclass(self, class_name: str, superclass: str) -> None:
        def apply() -> None:
            self.schema._add_superclass_edge(class_name, superclass)

        def rollback() -> None:
            self.schema._remove_superclass_edge(class_name, superclass)

        self._checked(
            "add_superclass %s -> %s" % (class_name, superclass), apply, rollback
        )
        self._rebuild_indexes_on(superclass)

    def drop_superclass(self, class_name: str, superclass: str) -> None:
        cls = self.schema.get_class(class_name)
        original_supers = list(cls.superclasses)

        def apply() -> None:
            self.schema._remove_superclass_edge(class_name, superclass)

        def rollback() -> None:
            cls.superclasses = list(original_supers)
            for sup in original_supers:
                self.schema._direct_subclasses[sup].add(class_name)
            self.schema._bump(class_name)

        self._checked(
            "drop_superclass %s -/-> %s" % (class_name, superclass), apply, rollback
        )
        self._rebuild_indexes_on(superclass)

    # -- group 3: nodes ------------------------------------------------------------

    def add_class(self, *args, **kwargs):
        """Alias of :meth:`Database.define_class` for taxonomy completeness."""
        cls = self.db.define_class(*args, **kwargs)
        self.log.append("add_class %s" % cls.name)
        return cls

    def drop_class(self, class_name: str, migrate_to: Optional[str] = None) -> int:
        """Drop a leaf class.

        Instances are migrated to ``migrate_to`` (keeping the attributes
        that class declares) or deleted when no target is given.  Returns
        the number of instances affected.
        """
        if self.schema.subclasses(class_name):
            raise SchemaEvolutionError(
                "class %s has subclasses and cannot be dropped" % (class_name,)
            )
        for index in self.db.indexes.all_indexes():
            if index.target_class == class_name:
                raise SchemaEvolutionError(
                    "class %s is the target of index %r; drop the index first"
                    % (class_name, index.name)
                )
        oids = list(self.db.storage.oids_of_class(class_name))
        count = 0
        if migrate_to is not None:
            for oid in oids:
                self.migrate_instance(oid, migrate_to)
                count += 1
        else:
            for oid in oids:
                self.db.delete(oid)
                count += 1
        self.schema._remove_class_entry(class_name)
        check_all(self.schema)
        self.log.append("drop_class %s" % class_name)
        return count

    def rename_class(self, old_name: str, new_name: str) -> int:
        """Rename a class, rewriting stored instances' class tags."""
        self.schema.get_class(old_name)
        oids = list(self.db.storage.oids_of_class(old_name))
        self.schema._rename_class_entry(old_name, new_name)
        count = 0
        for oid in oids:
            state = self.db.storage.load(oid)
            migrated = ObjectState(state.oid, new_name, state.values)
            self.db.storage.overwrite(migrated)
            count += 1
        for index in self.db.indexes.all_indexes():
            if index.target_class == old_name:
                index.target_class = new_name
            self.db.indexes.rebuild(index.name)
        check_all(self.schema)
        self.log.append("rename_class %s -> %s" % (old_name, new_name))
        return count

    def migrate_instance(self, oid, new_class: str) -> None:
        """Move one object to another class, coercing its state."""
        state = self.db.storage.load(oid)
        declared = self.schema.attributes(new_class)
        values = {
            name: value for name, value in state.values.items() if name in declared
        }
        for name, attr in declared.items():
            values.setdefault(name, attr.default_value())
        self.schema.validate_state(new_class, values, self.db._deref_class)
        old_state = state
        new_state = ObjectState(state.oid, new_class, values)
        self.db.storage.overwrite(new_state)
        self.db.indexes.notify_delete(old_state)
        self.db.indexes.notify_insert(new_state)
        self.log.append("migrate_instance %r -> %s" % (oid, new_class))
