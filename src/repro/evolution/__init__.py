"""Schema evolution: ORION-style invariants and change taxonomy."""

from .changes import SchemaEvolution
from .invariants import (
    check_all,
    check_distinct_name_invariant,
    check_domain_compatibility_invariant,
    check_hierarchy_invariant,
)

__all__ = [
    "SchemaEvolution",
    "check_all",
    "check_distinct_name_invariant",
    "check_domain_compatibility_invariant",
    "check_hierarchy_invariant",
]
