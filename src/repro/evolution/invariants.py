"""Schema invariants [BANE87].

The ORION schema-evolution framework defines invariants every schema
change must preserve.  Each checker raises
:class:`~repro.errors.SchemaEvolutionError` naming the violation; the
change operations in :mod:`repro.evolution.changes` validate on a trial
basis (apply, check, roll back on failure).
"""

from __future__ import annotations

from typing import List

from ..core.primitives import ANY_CLASS, ROOT_CLASS, is_primitive_class
from ..core.schema import Schema
from ..errors import SchemaError, SchemaEvolutionError


def check_hierarchy_invariant(schema: Schema) -> None:
    """The class graph is a rooted, connected DAG with a single root."""
    try:
        schema.check_no_cycle()
    except SchemaError as exc:
        raise SchemaEvolutionError(str(exc)) from exc
    for cls in schema.classes():
        if cls.name == ROOT_CLASS:
            continue
        if not cls.superclasses:
            raise SchemaEvolutionError(
                "class %s is disconnected from the hierarchy root" % cls.name
            )
        if ROOT_CLASS not in schema.mro(cls.name):
            raise SchemaEvolutionError(
                "class %s does not reach the root %s" % (cls.name, ROOT_CLASS)
            )


def check_distinct_name_invariant(schema: Schema) -> None:
    """Effective attribute/method names of every class are resolvable.

    With conflict resolution by linearization this holds by construction;
    the check verifies linearization itself succeeds for every class.
    """
    for cls in schema.classes():
        try:
            schema.mro(cls.name)
            schema.attributes(cls.name)
            schema.methods(cls.name)
        except SchemaError as exc:
            raise SchemaEvolutionError(
                "class %s cannot resolve members: %s" % (cls.name, exc)
            ) from exc


def check_domain_compatibility_invariant(schema: Schema) -> None:
    """A redefined attribute's domain must specialize the original's.

    ORION requires a subclass shadowing an inherited attribute to narrow
    (or keep) its domain, so code written against the superclass stays
    type-safe on subclass instances.
    """
    for cls in schema.classes():
        mro = schema.mro(cls.name)
        for attr_name, attr in cls.own_attributes.items():
            for ancestor_name in mro[1:]:
                ancestor = schema.get_class(ancestor_name)
                original = ancestor.own_attributes.get(attr_name)
                if original is None:
                    continue
                if not _domain_specializes(schema, attr.domain, original.domain):
                    raise SchemaEvolutionError(
                        "class %s redefines %r with domain %s, which does not "
                        "specialize %s (inherited from %s)"
                        % (cls.name, attr_name, attr.domain, original.domain, ancestor_name)
                    )
                break  # only the nearest shadowed definition constrains


def _domain_specializes(schema: Schema, narrow: str, wide: str) -> bool:
    if wide == ANY_CLASS or narrow == wide:
        return True
    if is_primitive_class(wide) or is_primitive_class(narrow):
        return narrow == wide
    try:
        return schema.is_subclass(narrow, wide)
    except SchemaError:
        return False


def check_all(schema: Schema) -> List[str]:
    """Run every invariant; returns the names of the checks that passed."""
    checks = (
        check_hierarchy_invariant,
        check_distinct_name_invariant,
        check_domain_compatibility_invariant,
    )
    passed = []
    for check in checks:
        check(schema)
        passed.append(check.__name__)
    return passed
