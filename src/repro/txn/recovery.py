"""Crash recovery: repeat history, then roll back losers.

An ARIES-shaped (but logical) three-pass recovery over the write-ahead
log:

1. **Analysis** — scan the log from the last CHECKPOINT, collecting the
   set of transactions with a COMMIT record (winners) and those without
   (losers).
2. **Redo** — re-apply every logged mutation in log order, winners and
   losers alike (repeating history).  Redo is idempotent: an insert of an
   already-present object becomes an overwrite, a delete of an absent
   object is skipped.
3. **Undo** — walk losers' mutations newest-first applying before-images.

The storage operations go through a small applier interface so recovery
can drive either a raw storage manager or a full database (with index
rebuild afterwards).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..core.obj import ObjectState
from ..storage.manager import StorageManager
from .wal import (
    ABORT,
    BEGIN,
    CHECKPOINT,
    COMMIT,
    DELETE,
    INSERT,
    UPDATE,
    LogRecord,
    WriteAheadLog,
)


class RecoveryReport:
    """What recovery did, for logging and tests."""

    def __init__(self) -> None:
        self.winners: Set[int] = set()
        self.losers: Set[int] = set()
        self.redone = 0
        self.undone = 0

    def __repr__(self) -> str:
        return "<RecoveryReport %d winners, %d losers, %d redone, %d undone>" % (
            len(self.winners),
            len(self.losers),
            self.redone,
            self.undone,
        )


def _apply_insert(storage: StorageManager, state: ObjectState) -> None:
    if storage.contains(state.oid):
        storage.overwrite(state)
    else:
        storage.store_new(state)


def _apply_delete(storage: StorageManager, state: ObjectState) -> None:
    if storage.contains(state.oid):
        storage.remove(state.oid)


def recover(wal: WriteAheadLog, storage: StorageManager) -> RecoveryReport:
    """Bring ``storage`` to the state implied by the log."""
    report = RecoveryReport()
    records = list(wal.replay())

    # Start from the last checkpoint: earlier records are already durable
    # in the data pages (checkpoint = flush + truncate is the normal path,
    # but a checkpoint record without truncation is also honoured).
    start = 0
    for position, record in enumerate(records):
        if record.record_type == CHECKPOINT:
            start = position + 1
    records = records[start:]

    # Pass 1: analysis.
    seen: Set[int] = set()
    finished: Set[int] = set()
    for record in records:
        if record.record_type == BEGIN:
            seen.add(record.txn_id)
        elif record.record_type == COMMIT:
            report.winners.add(record.txn_id)
            finished.add(record.txn_id)
        elif record.record_type == ABORT:
            finished.add(record.txn_id)
    report.losers = seen - finished

    # Pass 2: redo (repeat history in log order).
    for record in records:
        if record.record_type == INSERT and record.after is not None:
            _apply_insert(storage, record.after)
            report.redone += 1
        elif record.record_type == UPDATE and record.after is not None:
            _apply_insert(storage, record.after)
            report.redone += 1
        elif record.record_type == DELETE and record.before is not None:
            _apply_delete(storage, record.before)
            report.redone += 1

    # Pass 3: undo losers, newest-first.  Aborted transactions already
    # compensated before their ABORT record, and their compensations were
    # regular logged mutations replayed by redo, so only losers remain.
    loser_mutations: List[LogRecord] = [
        record
        for record in records
        if record.txn_id in report.losers
        and record.record_type in (INSERT, UPDATE, DELETE)
    ]
    for record in reversed(loser_mutations):
        if record.record_type == INSERT and record.after is not None:
            _apply_delete(storage, record.after)
        elif record.record_type == UPDATE and record.before is not None:
            _apply_insert(storage, record.before)
        elif record.record_type == DELETE and record.before is not None:
            _apply_insert(storage, record.before)
        report.undone += 1

    storage.flush()
    return report


def checkpoint(wal: WriteAheadLog, storage: StorageManager) -> None:
    """Make data pages durable, then truncate the log."""
    storage.flush()
    wal.log_checkpoint()
    wal.truncate()


def committed_states(wal: WriteAheadLog) -> Dict[int, int]:
    """Map txn id -> mutation count for committed transactions (tests)."""
    counts: Dict[int, int] = {}
    winners: Set[int] = set()
    for record in wal.replay():
        if record.record_type == COMMIT:
            winners.add(record.txn_id)
        elif record.record_type in (INSERT, UPDATE, DELETE):
            counts[record.txn_id] = counts.get(record.txn_id, 0) + 1
    return {txn: count for txn, count in counts.items() if txn in winners}
