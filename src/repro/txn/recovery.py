"""Crash recovery: repair pages, repeat history, then roll back losers.

An ARIES-shaped (but logical) recovery over the write-ahead log, with a
physical phase in front:

0. **Repair** — sweep data pages verifying checksums; a corrupt (torn)
   page is re-imaged from the newest PAGE_IMAGE record in the log.  The
   buffer pool logs a full page image before every write-back, so any
   page whose write tore has a durable image to restore.
1. **Analysis** — scan the log from the last CHECKPOINT, collecting the
   set of transactions with a COMMIT record (winners) and those without
   (losers).
2. **Redo** — re-apply every logged mutation in log order, winners and
   losers alike (repeating history).  Redo is idempotent: an insert of an
   already-present object becomes an overwrite, a delete of an absent
   object is skipped.
3. **Undo** — walk losers' mutations newest-first applying before-images.

Recovery itself is idempotent: every phase may be interrupted by a
second crash and re-run from scratch.  Phase 0 only writes CRC-verified
images from the log; the logical passes repeat history again; and the
log is not truncated until a later checkpoint, so nothing recovery needs
is consumed by running it.

The storage operations go through a small applier interface so recovery
can drive either a raw storage manager or a full database (with index
rebuild afterwards).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..core.obj import ObjectState
from ..obs.metrics import MetricsRegistry
from ..storage.manager import StorageManager
from .wal import (
    ABORT,
    BEGIN,
    CHECKPOINT,
    COMMIT,
    DELETE,
    INSERT,
    PAGE_IMAGE,
    UPDATE,
    LogRecord,
    WriteAheadLog,
)


class RecoveryReport:
    """What recovery did, for logging and tests."""

    def __init__(self) -> None:
        self.winners: Set[int] = set()
        self.losers: Set[int] = set()
        self.redone = 0
        self.undone = 0
        self.pages_reimaged = 0
        self.pages_reallocated = 0

    def __repr__(self) -> str:
        return (
            "<RecoveryReport %d winners, %d losers, %d redone, %d undone, "
            "%d pages reimaged>"
            % (
                len(self.winners),
                len(self.losers),
                self.redone,
                self.undone,
                self.pages_reimaged,
            )
        )


def _apply_insert(storage: StorageManager, state: ObjectState) -> None:
    if storage.contains(state.oid):
        storage.overwrite(state)
    else:
        storage.store_new(state)


def _apply_delete(storage: StorageManager, state: ObjectState) -> None:
    if storage.contains(state.oid):
        storage.remove(state.oid)


def recover(
    wal: WriteAheadLog,
    storage: StorageManager,
    registry: Optional[MetricsRegistry] = None,
) -> RecoveryReport:
    """Bring ``storage`` to the state implied by the log."""
    report = RecoveryReport()
    if registry is not None:
        registry.counter("recovery.runs").inc()
    records = list(wal.replay())

    # Phase 0: physical repair.  Re-extend the file over any allocations
    # the crash reverted, then re-image pages whose checksums fail from
    # the newest PAGE_IMAGE each page has in the companion log.
    images: Dict[int, bytes] = {}
    for record in wal.page_images():
        images[record.page_id] = record.page_data
    report.pages_reallocated = storage.ensure_heap_pages()
    report.pages_reimaged = storage.repair_pages(images)
    if report.pages_reimaged or report.pages_reallocated or storage.directory_stale:
        storage.rebuild_directory()
    if registry is not None:
        registry.counter("recovery.pages_reimaged").inc(report.pages_reimaged)
        registry.counter("recovery.pages_reallocated").inc(report.pages_reallocated)

    # Start from the last checkpoint: earlier records are already durable
    # in the data pages (checkpoint = flush + truncate is the normal path,
    # but a checkpoint record without truncation is also honoured).
    start = 0
    for position, record in enumerate(records):
        if record.record_type == CHECKPOINT:
            start = position + 1
    records = records[start:]

    # Pass 1: analysis.
    seen: Set[int] = set()
    finished: Set[int] = set()
    for record in records:
        if record.record_type == BEGIN:
            seen.add(record.txn_id)
        elif record.record_type == COMMIT:
            report.winners.add(record.txn_id)
            finished.add(record.txn_id)
        elif record.record_type == ABORT:
            finished.add(record.txn_id)
    report.losers = seen - finished

    # Pass 2: redo (repeat history in log order).
    for record in records:
        if record.record_type == INSERT and record.after is not None:
            _apply_insert(storage, record.after)
            report.redone += 1
        elif record.record_type == UPDATE and record.after is not None:
            _apply_insert(storage, record.after)
            report.redone += 1
        elif record.record_type == DELETE and record.before is not None:
            _apply_delete(storage, record.before)
            report.redone += 1

    # Pass 3: undo losers, newest-first.  Aborted transactions already
    # compensated before their ABORT record, and their compensations were
    # regular logged mutations replayed by redo, so only losers remain.
    loser_mutations: List[LogRecord] = [
        record
        for record in records
        if record.txn_id in report.losers
        and record.record_type in (INSERT, UPDATE, DELETE)
    ]
    for record in reversed(loser_mutations):
        if record.record_type == INSERT and record.after is not None:
            _apply_delete(storage, record.after)
        elif record.record_type == UPDATE and record.before is not None:
            _apply_insert(storage, record.before)
        elif record.record_type == DELETE and record.before is not None:
            _apply_insert(storage, record.before)
        report.undone += 1

    storage.flush()
    if registry is not None:
        registry.counter("recovery.redone").inc(report.redone)
        registry.counter("recovery.undone").inc(report.undone)
    return report


def checkpoint(wal: WriteAheadLog, storage: StorageManager) -> None:
    """Make data pages durable, then truncate the log."""
    storage.flush()
    wal.log_checkpoint()
    wal.truncate()


def committed_states(wal: WriteAheadLog) -> Dict[int, int]:
    """Map txn id -> mutation count for committed transactions (tests)."""
    counts: Dict[int, int] = {}
    winners: Set[int] = set()
    for record in wal.replay():
        if record.record_type == COMMIT:
            winners.add(record.txn_id)
        elif record.record_type in (INSERT, UPDATE, DELETE):
            counts[record.txn_id] = counts.get(record.txn_id, 0) + 1
    return {txn: count for txn, count in counts.items() if txn in winners}
