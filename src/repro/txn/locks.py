"""Lock manager with class-hierarchy granularity [GARZ88].

The lockable universe is a three-level granularity hierarchy mirroring
the data model::

    database  ->  class  ->  object

with the classic intention modes: a transaction reading one object takes
IS on the database and its class, then S on the object; a class scan
takes a single S at the class level instead of thousands of object locks
(experiment E8 measures exactly that trade).  Conflicts block on a
condition variable; a waits-for graph is checked on every block and the
requester is aborted with :class:`~repro.errors.DeadlockError` when it
would close a cycle.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from ..errors import DeadlockError, LockTimeoutError, TransactionError
from ..obs.metrics import MetricsRegistry
from ..obs.waits import WaitProfiler

#: Lock modes, weakest to strongest (SIX = shared + intention exclusive).
IS, IX, S, SIX, X = "IS", "IX", "S", "SIX", "X"

_COMPATIBLE = {
    (IS, IS): True, (IS, IX): True, (IS, S): True, (IS, SIX): True, (IS, X): False,
    (IX, IS): True, (IX, IX): True, (IX, S): False, (IX, SIX): False, (IX, X): False,
    (S, IS): True, (S, IX): False, (S, S): True, (S, SIX): False, (S, X): False,
    (SIX, IS): True, (SIX, IX): False, (SIX, S): False, (SIX, SIX): False, (SIX, X): False,
    (X, IS): False, (X, IX): False, (X, S): False, (X, SIX): False, (X, X): False,
}

#: mode -> strictly stronger modes it can upgrade to.
_UPGRADES = {
    IS: (IX, S, SIX, X),
    IX: (SIX, X),
    S: (SIX, X),
    SIX: (X,),
    X: (),
}

_STRENGTH = {IS: 0, IX: 1, S: 2, SIX: 3, X: 4}

#: held mode + requested mode -> the combined mode actually taken
#: (the classic S/IX join: a scanner that also writes holds SIX).
_COMBINE = {(IX, S): SIX, (S, IX): SIX}

#: What privileges a held mode subsumes.
_COVERS = {
    IS: {IS},
    IX: {IS, IX},
    S: {IS, S},
    SIX: {IS, IX, S, SIX},
    X: {IS, IX, S, SIX, X},
}


def _covers(held: str, requested: str) -> bool:
    return requested in _COVERS[held]

Resource = Tuple[str, Hashable]

#: The whole-database resource.
DATABASE: Resource = ("database", None)


def class_resource(class_name: str) -> Resource:
    return ("class", class_name)


def object_resource(oid) -> Resource:
    return ("object", oid)


def resource_label(resource: Resource) -> str:
    """Human/queryable label for a resource: ``class:Vehicle``,
    ``object:123``, ``database``."""
    level, key = resource
    if key is None:
        return level
    return "%s:%s" % (level, key)


def compatible(held: str, requested: str) -> bool:
    return _COMPATIBLE[(held, requested)]


class LockStats:
    """Lock-table counters — a view over ``locks.*`` registry metrics.

    ``blocks`` counts waits (the registry name is ``locks.waits``); the
    ``locks.wait_seconds`` histogram records how long each blocked
    acquisition actually waited before being granted or giving up.
    """

    __slots__ = ("_acquisitions", "_upgrades", "_blocks", "_deadlocks", "wait_seconds")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self._acquisitions = registry.counter("locks.acquisitions")
        self._upgrades = registry.counter("locks.upgrades")
        self._blocks = registry.counter("locks.waits")
        self._deadlocks = registry.counter("locks.deadlocks")
        self.wait_seconds = registry.histogram("locks.wait_seconds")

    @property
    def acquisitions(self) -> int:
        return self._acquisitions.value

    @acquisitions.setter
    def acquisitions(self, value: int) -> None:
        self._acquisitions.value = value

    @property
    def upgrades(self) -> int:
        return self._upgrades.value

    @upgrades.setter
    def upgrades(self, value: int) -> None:
        self._upgrades.value = value

    @property
    def blocks(self) -> int:
        return self._blocks.value

    @blocks.setter
    def blocks(self, value: int) -> None:
        self._blocks.value = value

    @property
    def deadlocks(self) -> int:
        return self._deadlocks.value

    @deadlocks.setter
    def deadlocks(self, value: int) -> None:
        self._deadlocks.value = value

    def reset(self) -> None:
        self._acquisitions.reset()
        self._upgrades.reset()
        self._blocks.reset()
        self._deadlocks.reset()
        self.wait_seconds.reset()


#: Sentinel distinguishing "use the manager's default" from an explicit
#: ``timeout=None`` (wait forever).
_DEFAULT_TIMEOUT = object()


class LockManager:
    """Mode-compatible, deadlock-detecting lock table."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        waits: Optional[WaitProfiler] = None,
        default_timeout: Optional[float] = 10.0,
    ) -> None:
        self._mutex = threading.Lock()
        self._condition = threading.Condition(self._mutex)
        #: resource -> {txn_id: mode}
        self._held: Dict[Resource, Dict[int, str]] = {}
        #: txn_id -> resources it holds (for release_all)
        self._by_txn: Dict[int, Set[Resource]] = {}
        #: txn_id -> (resource, mode) it is currently waiting for
        self._waiting: Dict[int, Tuple[Resource, str]] = {}
        self.stats = LockStats(registry)
        self.waits = waits
        #: Timeout applied when ``acquire`` is called without one.  The
        #: server front end shrinks it so a writer/writer conflict
        #: surfaces to a remote client as a typed error, not a long hang.
        self.default_timeout = default_timeout

    # -- acquisition -----------------------------------------------------------

    def acquire(
        self,
        txn_id: int,
        resource: Resource,
        mode: str,
        timeout: Any = _DEFAULT_TIMEOUT,
    ) -> None:
        """Acquire (or upgrade to) ``mode`` on ``resource`` for ``txn_id``."""
        if mode not in _STRENGTH:
            raise TransactionError("unknown lock mode %r" % (mode,))
        if timeout is _DEFAULT_TIMEOUT:
            timeout = self.default_timeout
        with self._condition:
            deadline = None
            wait_started = None
            first_blocker = None
            while True:
                current = self._held.get(resource, {}).get(txn_id)
                if current is not None:
                    if _covers(current, mode):
                        return  # already strong enough
                    mode = _COMBINE.get((current, mode), mode)
                if self._grantable(txn_id, resource, mode):
                    holders = self._held.setdefault(resource, {})
                    if txn_id in holders:
                        self.stats._upgrades.inc()
                    holders[txn_id] = mode
                    self._by_txn.setdefault(txn_id, set()).add(resource)
                    self._waiting.pop(txn_id, None)
                    self.stats._acquisitions.inc()
                    self._record_wait(txn_id, resource, wait_started, first_blocker)
                    return
                # Must wait: record the edge, check for deadlock.
                self._waiting[txn_id] = (resource, mode)
                if self._creates_deadlock(txn_id):
                    self._waiting.pop(txn_id, None)
                    self.stats._deadlocks.inc()
                    self._record_wait(txn_id, resource, wait_started, first_blocker)
                    raise DeadlockError(
                        "transaction %d aborted: lock on %r would deadlock"
                        % (txn_id, resource)
                    )
                self.stats._blocks.inc()
                if wait_started is None:
                    wait_started = time.perf_counter()
                    blockers = self._blockers(txn_id, resource, mode)
                    first_blocker = min(blockers) if blockers else None
                if timeout is not None:
                    if deadline is None:
                        deadline = time.perf_counter() + timeout
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or not self._condition.wait(remaining):
                        self._waiting.pop(txn_id, None)
                        self._record_wait(txn_id, resource, wait_started, first_blocker)
                        raise LockTimeoutError(
                            "transaction %d timed out waiting for %r %s"
                            % (txn_id, resource, mode)
                        )
                else:
                    self._condition.wait()

    def _record_wait(
        self,
        txn_id: int,
        resource: Resource,
        wait_started: Optional[float],
        blocker: Optional[int],
    ) -> None:
        """Close out a blocked acquisition: histogram + wait event.

        Called with ``_condition`` held; the profiler's own mutex sits
        above it in the declared lattice.  No-op when the acquisition
        was granted immediately (``wait_started`` is None).
        """
        if wait_started is None:
            return
        waited = time.perf_counter() - wait_started
        self.stats.wait_seconds.observe(waited)
        if self.waits is not None:
            self.waits.record(
                "Lock",
                waited,
                target=resource_label(resource),
                txn_id=txn_id,
                blocker=blocker,
            )

    def _blockers(self, txn_id: int, resource: Resource, mode: str) -> Set[int]:
        """Holders whose mode is incompatible with the request.

        Caller holds ``_condition``.
        """
        return {
            holder
            for holder, held_mode in self._held.get(resource, {}).items()
            if holder != txn_id and not compatible(held_mode, mode)
        }

    def _grantable(self, txn_id: int, resource: Resource, mode: str) -> bool:
        holders = self._held.get(resource, {})
        for other_txn, other_mode in holders.items():
            if other_txn == txn_id:
                continue
            if not compatible(other_mode, mode):
                return False
        current = holders.get(txn_id)
        if current is not None and mode not in _UPGRADES[current] and (
            _STRENGTH[mode] > _STRENGTH[current]
        ):
            # e.g. IX -> S is not a legal single-step upgrade; take X.
            return False
        return True

    # -- deadlock detection (waits-for cycle through held locks) ------------

    def _creates_deadlock(self, start_txn: int) -> bool:
        def blockers_of(txn: int) -> Set[int]:
            waiting_for = self._waiting.get(txn)
            if waiting_for is None:
                return set()
            resource, mode = waiting_for
            return self._blockers(txn, resource, mode)

        visited: Set[int] = set()
        stack = list(blockers_of(start_txn))
        while stack:
            txn = stack.pop()
            if txn == start_txn:
                return True
            if txn in visited:
                continue
            visited.add(txn)
            stack.extend(blockers_of(txn))
        return False

    # -- release ----------------------------------------------------------------

    def transfer(self, from_owner: int, to_owner: int) -> int:
        """Move all locks from one owner to another (checkin handover).

        A persistent workspace lock becomes the checkin transaction's
        lock so the write path does not conflict with the workspace's own
        holdings.  If the receiving owner already holds a resource, the
        stronger mode wins.  Returns the number of locks moved.
        """
        with self._condition:
            moved = 0
            for resource in list(self._by_txn.get(from_owner, ())):
                holders = self._held.get(resource, {})
                mode = holders.pop(from_owner, None)
                if mode is None:
                    continue
                current = holders.get(to_owner)
                if current is None or _STRENGTH[mode] > _STRENGTH[current]:
                    holders[to_owner] = mode
                self._by_txn.setdefault(to_owner, set()).add(resource)
                moved += 1
            self._by_txn.pop(from_owner, None)
            self._waiting.pop(from_owner, None)
            self._condition.notify_all()
            return moved

    def release_all(self, txn_id: int) -> None:
        with self._condition:
            for resource in self._by_txn.pop(txn_id, set()):
                holders = self._held.get(resource)
                if holders is not None:
                    holders.pop(txn_id, None)
                    if not holders:
                        del self._held[resource]
            self._waiting.pop(txn_id, None)
            self._condition.notify_all()

    # -- introspection -------------------------------------------------------------

    def holds(self, txn_id: int, resource: Resource, mode: Optional[str] = None) -> bool:
        with self._mutex:
            held = self._held.get(resource, {}).get(txn_id)
            if held is None:
                return False
            return mode is None or _covers(held, mode)

    def locks_held(self, txn_id: int) -> List[Tuple[Resource, str]]:
        with self._mutex:
            return sorted(
                (
                    (resource, self._held[resource][txn_id])
                    for resource in self._by_txn.get(txn_id, set())
                ),
                key=lambda item: repr(item[0]),
            )

    def lock_count(self) -> int:
        with self._mutex:
            return sum(len(holders) for holders in self._held.values())

    def waiting_edges(self) -> List[Dict[str, Any]]:
        """Live waits-for edges: one row per (waiter, blocker) pair.

        The edge set the deadlock detector walks, exposed for the
        ``SysLock``/``SysTransaction`` views and the monitor.
        """
        with self._mutex:
            edges = []
            for waiter, (resource, mode) in sorted(self._waiting.items()):
                for blocker in sorted(self._blockers(waiter, resource, mode)):
                    edges.append(
                        {
                            "waiter": waiter,
                            "blocker": blocker,
                            "resource": resource_label(resource),
                            "mode": mode,
                        }
                    )
            return edges

    def held_snapshot(self) -> List[Dict[str, Any]]:
        """Every lock-table entry: granted holds plus pending requests."""
        with self._mutex:
            rows = []
            for resource in sorted(self._held, key=resource_label):
                for txn_id, mode in sorted(self._held[resource].items()):
                    rows.append(
                        {
                            "resource": resource_label(resource),
                            "txn": txn_id,
                            "mode": mode,
                            "granted": True,
                        }
                    )
            for waiter, (resource, mode) in sorted(self._waiting.items()):
                rows.append(
                    {
                        "resource": resource_label(resource),
                        "txn": waiter,
                        "mode": mode,
                        "granted": False,
                    }
                )
            return rows
