"""Transactions: locking, WAL, recovery, long-duration workspaces."""

from .locks import (
    DATABASE,
    IS,
    IX,
    S,
    X,
    LockManager,
    LockStats,
    class_resource,
    compatible,
    object_resource,
)
from .long_tx import CheckinConflict, CheckinReport, PrivateWorkspace
from .recovery import RecoveryReport, checkpoint, recover
from .transaction import ACTIVE, ABORTED, COMMITTED, Transaction, TransactionManager
from .wal import (
    ABORT,
    BEGIN,
    CHECKPOINT,
    COMMIT,
    DELETE,
    INSERT,
    UPDATE,
    LogRecord,
    WriteAheadLog,
)

__all__ = [
    "DATABASE",
    "IS",
    "IX",
    "S",
    "X",
    "LockManager",
    "LockStats",
    "class_resource",
    "compatible",
    "object_resource",
    "CheckinConflict",
    "CheckinReport",
    "PrivateWorkspace",
    "RecoveryReport",
    "checkpoint",
    "recover",
    "ACTIVE",
    "ABORTED",
    "COMMITTED",
    "Transaction",
    "TransactionManager",
    "ABORT",
    "BEGIN",
    "CHECKPOINT",
    "COMMIT",
    "DELETE",
    "INSERT",
    "UPDATE",
    "LogRecord",
    "WriteAheadLog",
]
