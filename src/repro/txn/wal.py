"""Write-ahead log.

Logical logging: every committed mutation is recorded as an insert,
update (with before- and after-images) or delete (with before-image),
framed with a CRC so torn tails are detected instead of replayed.  The
log is the durability boundary — data pages may be flushed lazily; after
a crash, :mod:`repro.txn.recovery` repeats history from the last
checkpoint and rolls back losers.
"""

from __future__ import annotations

import struct
import threading
import time
import zlib
from typing import Iterator, List, Optional

from ..core.obj import ObjectState
from ..errors import RecoveryError
from ..faults import fsync_file, wrap_file
from ..obs.metrics import MetricsRegistry
from ..obs.waits import WaitProfiler
from ..storage.serializer import decode_object, encode_object

# Record types.
BEGIN = 1
INSERT = 2
UPDATE = 3
DELETE = 4
COMMIT = 5
ABORT = 6
CHECKPOINT = 7
#: Physical full-page image, logged by the buffer pool before a page
#: write-back (torn-page protection).  Recovery re-images a page whose
#: checksum fails from the newest image in the log.  Images live in a
#: *companion* physical log (``<path>.pages``), not the logical log:
#: interleaving 4 KiB snapshots with logical records would bloat replay
#: and couple two log streams with independent lifecycles.
PAGE_IMAGE = 8

_TYPE_NAMES = {
    BEGIN: "BEGIN",
    INSERT: "INSERT",
    UPDATE: "UPDATE",
    DELETE: "DELETE",
    COMMIT: "COMMIT",
    ABORT: "ABORT",
    CHECKPOINT: "CHECKPOINT",
    PAGE_IMAGE: "PAGE_IMAGE",
}

_FRAME = struct.Struct(">IIBQ")  # crc, payload length, type, txn id
_PAGE_HEAD = struct.Struct(">I")  # page id prefix of a PAGE_IMAGE payload


class LogRecord:
    """One log entry; ``before``/``after`` are object states or None.

    ``PAGE_IMAGE`` records carry ``page_id``/``page_data`` instead — a
    physical snapshot, not a logical mutation.
    """

    __slots__ = ("lsn", "record_type", "txn_id", "before", "after", "page_id", "page_data")

    def __init__(
        self,
        record_type: int,
        txn_id: int,
        before: Optional[ObjectState] = None,
        after: Optional[ObjectState] = None,
        lsn: int = -1,
        page_id: Optional[int] = None,
        page_data: Optional[bytes] = None,
    ) -> None:
        self.record_type = record_type
        self.txn_id = txn_id
        self.before = before
        self.after = after
        self.lsn = lsn
        self.page_id = page_id
        self.page_data = page_data

    def payload(self) -> bytes:
        if self.record_type == PAGE_IMAGE:
            return _PAGE_HEAD.pack(self.page_id) + (self.page_data or b"")
        parts = []
        for state in (self.before, self.after):
            if state is None:
                parts.append(struct.pack(">I", 0))
            else:
                encoded = encode_object(state)
                parts.append(struct.pack(">I", len(encoded)))
                parts.append(encoded)
        return b"".join(parts)

    @classmethod
    def from_payload(cls, record_type: int, txn_id: int, payload: bytes, lsn: int) -> "LogRecord":
        if record_type == PAGE_IMAGE:
            (page_id,) = _PAGE_HEAD.unpack_from(payload, 0)
            return cls(
                record_type,
                txn_id,
                lsn=lsn,
                page_id=page_id,
                page_data=payload[_PAGE_HEAD.size :],
            )
        pos = 0
        states: List[Optional[ObjectState]] = []
        for _ in range(2):
            (length,) = struct.unpack_from(">I", payload, pos)
            pos += 4
            if length == 0:
                states.append(None)
            else:
                states.append(decode_object(payload[pos : pos + length]))
                pos += length
        return cls(record_type, txn_id, states[0], states[1], lsn)

    def __repr__(self) -> str:
        return "<LogRecord %d %s txn=%d>" % (
            self.lsn,
            _TYPE_NAMES.get(self.record_type, "?"),
            self.txn_id,
        )


class WriteAheadLog:
    """Append-only log; in-memory when ``path`` is None (tests, ephemeral).

    ``sync_on_commit`` controls whether COMMIT records fsync — the knob
    experiment E13 sweeps.  ``group_commit`` (default on) splits the
    commit into an append phase and a sync phase: concurrent committers
    append their COMMIT record under the log mutex and then enqueue on a
    condition-variable coordinator where one of them — the batch leader
    — performs a single flush+fsync that durably covers *every* commit
    appended before it ran.  A transaction's ``append`` only returns
    once a covering sync has completed, so the durability contract is
    byte-identical to per-commit fsync; with one committer the physical
    I/O sequence (write, flush, fsync) is also identical, which keeps
    the seeded fault-injection matrices deterministic.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        sync_on_commit: bool = True,
        registry: Optional[MetricsRegistry] = None,
        waits: Optional[WaitProfiler] = None,
        tracer=None,
        group_commit: bool = True,
    ) -> None:
        self.path = path
        self.sync_on_commit = sync_on_commit
        self.group_commit = group_commit
        self._waits = waits
        self._tracer = tracer
        #: Serializes every append (frame write + LSN allocation) and
        #: the flush half of a batch sync.
        self._wal_mutex = threading.Lock()
        #: Group-commit coordinator state: committers enqueue their
        #: append sequence number and wait until ``_synced_seq`` covers
        #: it; at most one leader (``_leader_busy``) syncs at a time.
        self._group_cond = threading.Condition()
        self._appended_seq = 0
        self._synced_seq = 0
        self._leader_busy = False
        self._pending: List[int] = []
        self._records: List[LogRecord] = []  # memory mode only
        self._next_lsn = 0
        self._file = None
        self._registry = registry if registry is not None else MetricsRegistry()
        registry = self._registry
        self._appends = registry.counter("wal.appends")
        #: A "flush" is the commit-time durability point: file flush for
        #: durable logs, the COMMIT append itself for in-memory logs.
        self._flushes = registry.counter("wal.flushes")
        self._syncs = registry.counter("wal.syncs")
        self._truncates = registry.counter("wal.truncates")
        self._append_bytes = registry.counter("wal.append_bytes")
        #: Torn tails silently truncated during replay — the expected
        #: crash artifact, but one worth *seeing* when it happens.
        self._torn_tails = registry.counter("fault.wal_torn_tail")
        self._image_appends = registry.counter("wal.page_images")
        self._image_bytes = registry.counter("wal.page_image_bytes")
        #: Group-commit telemetry: batches is fsync rounds, commits is
        #: transactions those rounds covered; batch_size their ratio.
        self._group_batches = registry.counter("wal.group_commit.batches")
        self._group_commits = registry.counter("wal.group_commit.commits")
        self._group_batch_size = registry.histogram("wal.group_commit.batch_size")
        #: Companion physical log holding PAGE_IMAGE frames.
        self.pages_path = path + ".pages" if path is not None else None
        self._pages_file = None
        self._page_images: List[LogRecord] = []  # memory mode only
        if path is not None:
            self._file = wrap_file(open(path, "ab"), "wal:%s" % path, registry)
            self._pages_file = wrap_file(
                open(self.pages_path, "ab"), "wal-pages:%s" % self.pages_path, registry
            )
            # Count pre-existing records so LSNs keep increasing.  A
            # corrupt log is not fatal at open time — recovery's explicit
            # replay() reports it to the caller.
            try:
                for _ in self.replay():
                    pass
            except RecoveryError:
                pass

    # -- writing ------------------------------------------------------------

    def append(self, record: LogRecord) -> int:
        with self._wal_mutex:
            record.lsn = self._next_lsn
            self._next_lsn += 1
            self._appends.inc()
            if self._file is None:
                self._records.append(record)
                if record.record_type == COMMIT:
                    self._flushes.inc()
                return record.lsn
            payload = record.payload()
            crc = zlib.crc32(payload + bytes([record.record_type]))
            frame = _FRAME.pack(crc, len(payload), record.record_type, record.txn_id)
            self._file.write(frame + payload)
            self._append_bytes.inc(_FRAME.size + len(payload))
            if record.record_type != COMMIT:
                return record.lsn
            self._appended_seq += 1
            seq = self._appended_seq
            if not self.group_commit:
                # Escape hatch (--no-group-commit): the classic inline
                # flush+fsync before append returns, fully serialized.
                self._commit_barrier(record.txn_id)
                return record.lsn
        # Group commit: the frame is appended; durability comes from
        # whichever batch sync covers our sequence number.
        self._await_durable(seq, record.txn_id)
        return record.lsn

    def _commit_barrier(self, txn_id: int) -> None:
        """Per-commit durability point (flush, then fsync if configured)."""
        started = time.perf_counter() if self._waits is not None else 0.0
        self._file.flush()
        self._flushes.inc()
        if self._waits is not None:
            self._waits.record(
                "WALFlush",
                time.perf_counter() - started,
                target=self.path,
                txn_id=txn_id,
            )
        if self.sync_on_commit:
            started = time.perf_counter() if self._waits is not None else 0.0
            fsync_file(self._file)
            self._syncs.inc()
            if self._waits is not None:
                self._waits.record(
                    "WALSync",
                    time.perf_counter() - started,
                    target=self.path,
                    txn_id=txn_id,
                )

    def _await_durable(self, seq: int, txn_id: int) -> None:
        """Block until a batch sync covers append sequence ``seq``.

        The classic leader/follower protocol: every committer enqueues
        its sequence; if no sync is in flight the caller elects itself
        leader and performs one, otherwise it waits — by the time it
        wakes, either some batch covered it (done: one fsync amortized
        over the whole queue) or it takes the leader role itself.
        """
        cond = self._group_cond
        with cond:
            self._pending.append(seq)
            while True:
                if self._synced_seq >= seq:
                    return
                if not self._leader_busy:
                    self._leader_busy = True
                    break
                cond.wait()
        self._sync_batch(txn_id)

    def _sync_batch(self, txn_id: int) -> None:
        """Leader half: one flush+fsync covering every appended commit.

        On failure (injected crash, I/O error) ``_synced_seq`` does not
        advance — no follower is ever told it is durable by a sync that
        did not complete — but the leader role is always handed back so
        waiters can re-elect and surface the failure on their own
        commit path.
        """
        covered = 0
        completed = False
        try:
            started = time.perf_counter() if self._waits is not None else 0.0
            with self._wal_mutex:
                covered = self._appended_seq
                self._file.flush()
            self._flushes.inc()
            if self._waits is not None:
                self._waits.record(
                    "WALFlush",
                    time.perf_counter() - started,
                    target=self.path,
                    txn_id=txn_id,
                )
            if self.sync_on_commit:
                started = time.perf_counter() if self._waits is not None else 0.0
                fsync_file(self._file)
                self._syncs.inc()
                if self._waits is not None:
                    self._waits.record(
                        "WALSync",
                        time.perf_counter() - started,
                        target=self.path,
                        txn_id=txn_id,
                    )
            completed = True
        finally:
            with self._group_cond:
                if completed:
                    self._synced_seq = max(self._synced_seq, covered)
                    done = [s for s in self._pending if s <= covered]
                    self._pending = [s for s in self._pending if s > covered]
                    self._group_batches.inc()
                    self._group_commits.inc(len(done))
                    self._group_batch_size.observe(len(done))
                self._leader_busy = False
                self._group_cond.notify_all()

    def log_begin(self, txn_id: int) -> None:
        self.append(LogRecord(BEGIN, txn_id))

    def log_insert(self, txn_id: int, after: ObjectState) -> None:
        self.append(LogRecord(INSERT, txn_id, after=after))

    def log_update(self, txn_id: int, before: ObjectState, after: ObjectState) -> None:
        self.append(LogRecord(UPDATE, txn_id, before=before, after=after))

    def log_delete(self, txn_id: int, before: ObjectState) -> None:
        self.append(LogRecord(DELETE, txn_id, before=before))

    def log_commit(self, txn_id: int) -> None:
        self.append(LogRecord(COMMIT, txn_id))

    def log_abort(self, txn_id: int) -> None:
        self.append(LogRecord(ABORT, txn_id))

    def log_checkpoint(self) -> None:
        self.append(LogRecord(CHECKPOINT, 0))

    def log_page_image(self, page_id: int, data: bytes) -> None:
        """Record a physical full-page image (torn-page protection).

        Logged by the buffer pool immediately before each dirty page
        write-back; not tied to any transaction (txn id 0).  Images go
        to the companion ``.pages`` log, framed exactly like logical
        records so torn image tails are detected the same way.
        """
        record = LogRecord(PAGE_IMAGE, 0, page_id=page_id, page_data=data)
        self._image_appends.inc()
        if self._pages_file is None:
            self._page_images.append(record)
            return
        payload = record.payload()
        crc = zlib.crc32(payload + bytes([PAGE_IMAGE]))
        frame = _FRAME.pack(crc, len(payload), PAGE_IMAGE, 0)
        with self._wal_mutex:
            self._pages_file.write(frame + payload)
        self._image_bytes.inc(_FRAME.size + len(payload))

    def sync(self) -> None:
        """Force both logs (physical first, then logical) to stable storage.

        Called by the buffer pool before page write-backs — this is the
        write-ahead rule at both levels: a data page never reaches disk
        ahead of its full-page image *or* of the logical records that
        produced it.
        """
        if self._file is None:
            return
        with self._wal_mutex:
            if self._pages_file is not None:
                self._pages_file.flush()
                fsync_file(self._pages_file)
            self._file.flush()
            fsync_file(self._file)
            self._syncs.inc()

    # -- reading ------------------------------------------------------------

    def replay(self) -> Iterator[LogRecord]:
        """All intact records, oldest first.

        A torn final record (partial frame or CRC mismatch at the tail)
        ends iteration silently — that is the crash case WAL is designed
        for.  Corruption *before* the tail raises RecoveryError.
        """
        if self._file is None:
            yield from list(self._records)
            return
        with self._wal_mutex:
            self._file.flush()
        lsn = 0
        with open(self.path, "rb") as handle:
            data = handle.read()
        pos = 0
        while pos < len(data):
            if pos + _FRAME.size > len(data):
                self._note_torn_tail(self.path, pos, len(data), "torn frame header")
                break
            crc, length, record_type, txn_id = _FRAME.unpack_from(data, pos)
            frame_end = pos + _FRAME.size + length
            if frame_end > len(data):
                self._note_torn_tail(self.path, pos, len(data), "torn payload")
                break
            payload = data[pos + _FRAME.size : frame_end]
            if zlib.crc32(payload + bytes([record_type])) != crc:
                if frame_end == len(data):
                    self._note_torn_tail(self.path, pos, len(data), "checksum mismatch")
                    break
                raise RecoveryError("corrupt log record at offset %d" % pos)
            if record_type not in _TYPE_NAMES:
                raise RecoveryError("unknown log record type %d" % record_type)
            yield LogRecord.from_payload(record_type, txn_id, payload, lsn)
            lsn += 1
            pos = frame_end
        self._next_lsn = max(self._next_lsn, lsn)

    def page_images(self) -> Iterator[LogRecord]:
        """PAGE_IMAGE records from the companion log, oldest first.

        The same torn-tail tolerance as :meth:`replay`: a partial or
        checksum-failing final frame ends iteration (counted, not
        raised); corruption before the tail raises RecoveryError.
        """
        if self._pages_file is None:
            yield from list(self._page_images)
            return
        with self._wal_mutex:
            self._pages_file.flush()
        with open(self.pages_path, "rb") as handle:
            data = handle.read()
        pos = 0
        while pos < len(data):
            if pos + _FRAME.size > len(data):
                self._note_torn_tail(self.pages_path, pos, len(data), "torn frame header")
                break
            crc, length, record_type, txn_id = _FRAME.unpack_from(data, pos)
            frame_end = pos + _FRAME.size + length
            if frame_end > len(data):
                self._note_torn_tail(self.pages_path, pos, len(data), "torn payload")
                break
            payload = data[pos + _FRAME.size : frame_end]
            if zlib.crc32(payload + bytes([record_type])) != crc:
                if frame_end == len(data):
                    self._note_torn_tail(self.pages_path, pos, len(data), "checksum mismatch")
                    break
                raise RecoveryError(
                    "corrupt page-image record at offset %d" % pos
                )
            if record_type != PAGE_IMAGE:
                raise RecoveryError(
                    "unexpected record type %d in page-image log" % record_type
                )
            yield LogRecord.from_payload(record_type, txn_id, payload, -1)
            pos = frame_end

    def _note_torn_tail(self, path: Optional[str], offset: int, size: int, reason: str) -> None:
        """Count (and trace) a torn tail truncated during replay.

        The truncation itself is correct crash behaviour; the point is
        that it must never be *silent* — operators diagnosing a recovery
        should see how much log was discarded and why.
        """
        self._torn_tails.inc()
        if self._tracer is not None:
            self._tracer.note(
                "wal.torn_tail",
                path=path,
                offset=offset,
                discarded_bytes=size - offset,
                reason=reason,
            )

    def truncate(self) -> None:
        """Discard both logs (after a checkpoint made data pages durable)."""
        self._truncates.inc()
        if self._file is None:
            self._records.clear()
            self._page_images.clear()
            return
        with self._wal_mutex:
            self._file.close()
            self._file = open(self.path, "wb")
            self._file.close()
            self._file = wrap_file(
                open(self.path, "ab"), "wal:%s" % self.path, self._registry
            )
            self._pages_file.close()
            self._pages_file = open(self.pages_path, "wb")
            self._pages_file.close()
            self._pages_file = wrap_file(
                open(self.pages_path, "ab"),
                "wal-pages:%s" % self.pages_path,
                self._registry,
            )

    @property
    def record_count(self) -> int:
        if self._file is None:
            return len(self._records)
        return sum(1 for _ in self.replay())

    def close(self) -> None:
        if self._file is not None and not self._file.closed:
            self._file.flush()
            self._file.close()
        if self._pages_file is not None and not self._pages_file.closed:
            self._pages_file.flush()
            self._pages_file.close()
