"""Write-ahead log.

Logical logging: every committed mutation is recorded as an insert,
update (with before- and after-images) or delete (with before-image),
framed with a CRC so torn tails are detected instead of replayed.  The
log is the durability boundary — data pages may be flushed lazily; after
a crash, :mod:`repro.txn.recovery` repeats history from the last
checkpoint and rolls back losers.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from typing import Iterator, List, Optional

from ..core.obj import ObjectState
from ..errors import RecoveryError
from ..obs.metrics import MetricsRegistry
from ..obs.waits import WaitProfiler
from ..storage.serializer import decode_object, encode_object

# Record types.
BEGIN = 1
INSERT = 2
UPDATE = 3
DELETE = 4
COMMIT = 5
ABORT = 6
CHECKPOINT = 7

_TYPE_NAMES = {
    BEGIN: "BEGIN",
    INSERT: "INSERT",
    UPDATE: "UPDATE",
    DELETE: "DELETE",
    COMMIT: "COMMIT",
    ABORT: "ABORT",
    CHECKPOINT: "CHECKPOINT",
}

_FRAME = struct.Struct(">IIBQ")  # crc, payload length, type, txn id


class LogRecord:
    """One log entry; ``before``/``after`` are object states or None."""

    __slots__ = ("lsn", "record_type", "txn_id", "before", "after")

    def __init__(
        self,
        record_type: int,
        txn_id: int,
        before: Optional[ObjectState] = None,
        after: Optional[ObjectState] = None,
        lsn: int = -1,
    ) -> None:
        self.record_type = record_type
        self.txn_id = txn_id
        self.before = before
        self.after = after
        self.lsn = lsn

    def payload(self) -> bytes:
        parts = []
        for state in (self.before, self.after):
            if state is None:
                parts.append(struct.pack(">I", 0))
            else:
                encoded = encode_object(state)
                parts.append(struct.pack(">I", len(encoded)))
                parts.append(encoded)
        return b"".join(parts)

    @classmethod
    def from_payload(cls, record_type: int, txn_id: int, payload: bytes, lsn: int) -> "LogRecord":
        pos = 0
        states: List[Optional[ObjectState]] = []
        for _ in range(2):
            (length,) = struct.unpack_from(">I", payload, pos)
            pos += 4
            if length == 0:
                states.append(None)
            else:
                states.append(decode_object(payload[pos : pos + length]))
                pos += length
        return cls(record_type, txn_id, states[0], states[1], lsn)

    def __repr__(self) -> str:
        return "<LogRecord %d %s txn=%d>" % (
            self.lsn,
            _TYPE_NAMES.get(self.record_type, "?"),
            self.txn_id,
        )


class WriteAheadLog:
    """Append-only log; in-memory when ``path`` is None (tests, ephemeral).

    ``sync_on_commit`` controls whether COMMIT records fsync — the knob
    experiment E13 sweeps.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        sync_on_commit: bool = True,
        registry: Optional[MetricsRegistry] = None,
        waits: Optional[WaitProfiler] = None,
    ) -> None:
        self.path = path
        self.sync_on_commit = sync_on_commit
        self._waits = waits
        self._records: List[LogRecord] = []  # memory mode only
        self._next_lsn = 0
        self._file = None
        registry = registry if registry is not None else MetricsRegistry()
        self._appends = registry.counter("wal.appends")
        #: A "flush" is the commit-time durability point: file flush for
        #: durable logs, the COMMIT append itself for in-memory logs.
        self._flushes = registry.counter("wal.flushes")
        self._syncs = registry.counter("wal.syncs")
        self._truncates = registry.counter("wal.truncates")
        self._append_bytes = registry.counter("wal.append_bytes")
        if path is not None:
            self._file = open(path, "ab")
            # Count pre-existing records so LSNs keep increasing.  A
            # corrupt log is not fatal at open time — recovery's explicit
            # replay() reports it to the caller.
            try:
                for _ in self.replay():
                    pass
            except RecoveryError:
                pass

    # -- writing ------------------------------------------------------------

    def append(self, record: LogRecord) -> int:
        record.lsn = self._next_lsn
        self._next_lsn += 1
        self._appends.inc()
        if self._file is None:
            self._records.append(record)
            if record.record_type == COMMIT:
                self._flushes.inc()
        else:
            payload = record.payload()
            crc = zlib.crc32(payload + bytes([record.record_type]))
            frame = _FRAME.pack(crc, len(payload), record.record_type, record.txn_id)
            self._file.write(frame + payload)
            self._append_bytes.inc(_FRAME.size + len(payload))
            if record.record_type == COMMIT:
                started = time.perf_counter() if self._waits is not None else 0.0
                self._file.flush()
                self._flushes.inc()
                if self._waits is not None:
                    self._waits.record(
                        "WALFlush",
                        time.perf_counter() - started,
                        target=self.path,
                        txn_id=record.txn_id,
                    )
                if self.sync_on_commit:
                    started = time.perf_counter() if self._waits is not None else 0.0
                    os.fsync(self._file.fileno())
                    self._syncs.inc()
                    if self._waits is not None:
                        self._waits.record(
                            "WALSync",
                            time.perf_counter() - started,
                            target=self.path,
                            txn_id=record.txn_id,
                        )
        return record.lsn

    def log_begin(self, txn_id: int) -> None:
        self.append(LogRecord(BEGIN, txn_id))

    def log_insert(self, txn_id: int, after: ObjectState) -> None:
        self.append(LogRecord(INSERT, txn_id, after=after))

    def log_update(self, txn_id: int, before: ObjectState, after: ObjectState) -> None:
        self.append(LogRecord(UPDATE, txn_id, before=before, after=after))

    def log_delete(self, txn_id: int, before: ObjectState) -> None:
        self.append(LogRecord(DELETE, txn_id, before=before))

    def log_commit(self, txn_id: int) -> None:
        self.append(LogRecord(COMMIT, txn_id))

    def log_abort(self, txn_id: int) -> None:
        self.append(LogRecord(ABORT, txn_id))

    def log_checkpoint(self) -> None:
        self.append(LogRecord(CHECKPOINT, 0))

    # -- reading ------------------------------------------------------------

    def replay(self) -> Iterator[LogRecord]:
        """All intact records, oldest first.

        A torn final record (partial frame or CRC mismatch at the tail)
        ends iteration silently — that is the crash case WAL is designed
        for.  Corruption *before* the tail raises RecoveryError.
        """
        if self._file is None:
            yield from list(self._records)
            return
        self._file.flush()
        lsn = 0
        with open(self.path, "rb") as handle:
            data = handle.read()
        pos = 0
        while pos < len(data):
            if pos + _FRAME.size > len(data):
                break  # torn frame header at tail
            crc, length, record_type, txn_id = _FRAME.unpack_from(data, pos)
            frame_end = pos + _FRAME.size + length
            if frame_end > len(data):
                break  # torn payload at tail
            payload = data[pos + _FRAME.size : frame_end]
            if zlib.crc32(payload + bytes([record_type])) != crc:
                if frame_end == len(data):
                    break  # torn final record
                raise RecoveryError("corrupt log record at offset %d" % pos)
            if record_type not in _TYPE_NAMES:
                raise RecoveryError("unknown log record type %d" % record_type)
            yield LogRecord.from_payload(record_type, txn_id, payload, lsn)
            lsn += 1
            pos = frame_end
        self._next_lsn = max(self._next_lsn, lsn)

    def truncate(self) -> None:
        """Discard the log (after a checkpoint made data pages durable)."""
        self._truncates.inc()
        if self._file is None:
            self._records.clear()
            return
        self._file.close()
        self._file = open(self.path, "wb")
        self._file.close()
        self._file = open(self.path, "ab")

    @property
    def record_count(self) -> int:
        if self._file is None:
            return len(self._records)
        return sum(1 for _ in self.replay())

    def close(self) -> None:
        if self._file is not None and not self._file.closed:
            self._file.flush()
            self._file.close()
