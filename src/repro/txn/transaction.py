"""Transaction lifecycle.

Conventional short transactions with ACID semantics (requirement 2 of the
paper's minimum definition): strict two-phase locking via the lock
manager, logical undo for rollback, WAL records for durability.  The
database layer registers an undo closure for every mutation; abort runs
them newest-first, then both paths release all locks.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional

from ..errors import TransactionError
from ..obs.metrics import MetricsRegistry, NULL_INSTRUMENT
from .locks import LockManager
from .wal import WriteAheadLog

ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"


class Transaction:
    """One unit of work."""

    def __init__(self, txn_id: int, manager: "TransactionManager") -> None:
        self.txn_id = txn_id
        self._manager = manager
        self.status = ACTIVE
        #: Wall-clock begin timestamp (display only; ages use the
        #: perf_counter twin below per the obs clock convention).
        self.started_at = time.time()  # lint: ignore[wall-clock-duration]
        self._started_clock = time.perf_counter()
        self._undo_actions: List[Callable[[], None]] = []
        #: Mutation count, for tests and the WAL experiment.
        self.operations = 0
        #: Lock-escalation bookkeeping (maintained by the database):
        #: object-lock counts per class, and classes escalated to a
        #: class-level lock ("S" or "X").
        self.object_lock_counts: Dict[str, int] = {}
        self.escalated_classes: Dict[str, str] = {}
        #: The transaction's read snapshot (a
        #: :class:`~repro.versions.store.Snapshot`), opened lazily by
        #: the database at the transaction's first snapshot read and
        #: closed by the manager when the transaction finishes.
        self.snapshot = None

    # -- state ------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self.status == ACTIVE

    @property
    def age_seconds(self) -> float:
        """Seconds since begin (perf_counter-based)."""
        return time.perf_counter() - self._started_clock

    def _require_active(self) -> None:
        if self.status != ACTIVE:
            raise TransactionError(
                "transaction %d is %s, not active" % (self.txn_id, self.status)
            )

    def record_undo(self, action: Callable[[], None]) -> None:
        """Register a compensation closure, run newest-first on abort."""
        self._require_active()
        self._undo_actions.append(action)
        self.operations += 1

    # -- completion ----------------------------------------------------------

    def commit(self) -> None:
        self._manager.commit(self)

    def abort(self) -> None:
        self._manager.abort(self)

    # -- context manager: commit on success, abort on exception --------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.status != ACTIVE:
            return False
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False

    def __repr__(self) -> str:
        return "<Transaction %d %s (%d ops)>" % (
            self.txn_id,
            self.status,
            self.operations,
        )


class TransactionManager:
    """Begins, commits and aborts transactions; tracks the per-thread
    current transaction so the database can autocommit single operations.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        locks: LockManager,
        registry: Optional[MetricsRegistry] = None,
        version_store=None,
    ) -> None:
        self.wal = wal
        self.locks = locks
        #: Optional :class:`~repro.versions.store.VersionStore`: commit
        #: stamps before-images with the new commit timestamp, abort
        #: discards them, and finish closes the transaction's snapshot.
        self.version_store = version_store
        self._next_id = 1
        self._id_mutex = threading.Lock()
        self._active: Dict[int, Transaction] = {}
        self._current = threading.local()
        self.committed_count = 0
        self.aborted_count = 0
        if registry is not None:
            self._m_active = registry.gauge("txn.active")
            self._m_commits = registry.counter("txn.commits")
            self._m_aborts = registry.counter("txn.aborts")
        else:
            self._m_active = NULL_INSTRUMENT
            self._m_commits = NULL_INSTRUMENT
            self._m_aborts = NULL_INSTRUMENT

    # -- current-transaction tracking ---------------------------------------

    @property
    def current(self) -> Optional[Transaction]:
        txn = getattr(self._current, "txn", None)
        if txn is not None and not txn.is_active:
            self._current.txn = None
            return None
        return txn

    def begin(self) -> Transaction:
        if self.current is not None:
            raise TransactionError(
                "transaction %d is already active on this thread"
                % self.current.txn_id
            )
        with self._id_mutex:
            txn_id = self._next_id
            self._next_id += 1
        txn = Transaction(txn_id, self)
        self._active[txn_id] = txn
        self._m_active.set(len(self._active))
        self._current.txn = txn
        self.wal.log_begin(txn_id)
        return txn

    def attach(self, txn: Transaction) -> None:
        """Bind ``txn`` as the calling thread's current transaction.

        Server sessions park their transaction between requests (see
        :meth:`detach`) and re-attach it on whichever worker thread
        serves the next request, so one logical session spans many
        threads while the engine's thread-local autocommit logic keeps
        working unchanged.
        """
        current = self.current
        if current is not None and current is not txn:
            raise TransactionError(
                "transaction %d is already active on this thread; cannot "
                "attach transaction %d" % (current.txn_id, txn.txn_id)
            )
        txn._require_active()
        self._current.txn = txn

    def detach(self) -> Optional[Transaction]:
        """Unbind and return the calling thread's current transaction.

        The transaction stays active (locks, undo log, WAL state are
        untouched) — it is merely no longer this thread's implicit
        transaction.  Returns ``None`` when the thread had none.
        """
        txn = self.current
        self._current.txn = None
        return txn

    @contextlib.contextmanager
    def bound(self, txn: Transaction) -> Iterator[Transaction]:
        """Run a block with ``txn`` attached to the calling thread.

        On exit the binding is removed again (unless the transaction
        already finished inside the block, which clears it itself).
        """
        self.attach(txn)
        try:
            yield txn
        finally:
            if getattr(self._current, "txn", None) is txn:
                self._current.txn = None

    def commit(self, txn: Transaction) -> None:
        txn._require_active()
        self.wal.log_commit(txn.txn_id)
        # Only after the commit record is durable does the write become
        # visible: stamping the version-store entries with the new
        # commit timestamp is what moves the snapshot horizon forward.
        if self.version_store is not None:
            self.version_store.commit(txn.txn_id)
        txn.status = COMMITTED
        self._finish(txn)
        self.committed_count += 1
        self._m_commits.inc()

    def abort(self, txn: Transaction) -> None:
        txn._require_active()
        # Compensate newest-first while still holding all locks.
        for action in reversed(txn._undo_actions):
            action()
        self.wal.log_abort(txn.txn_id)
        if self.version_store is not None:
            self.version_store.abort(txn.txn_id)
        txn.status = ABORTED
        self._finish(txn)
        self.aborted_count += 1
        self._m_aborts.inc()

    def _finish(self, txn: Transaction) -> None:
        if txn.snapshot is not None:
            if self.version_store is not None:
                self.version_store.close_snapshot(txn.snapshot)
            txn.snapshot = None
        self.locks.release_all(txn.txn_id)
        self._active.pop(txn.txn_id, None)
        self._m_active.set(len(self._active))
        if getattr(self._current, "txn", None) is txn:
            self._current.txn = None

    # -- introspection --------------------------------------------------------

    def active_transactions(self) -> List[int]:
        return sorted(self._active)

    def active_snapshot(self) -> List[Transaction]:
        """The live :class:`Transaction` objects, id order (SysTransaction)."""
        return [self._active[txn_id] for txn_id in sorted(self._active)]

    def abort_all_active(self) -> None:
        """Abort every in-flight transaction (shutdown path)."""
        for txn_id in self.active_transactions():
            txn = self._active.get(txn_id)
            if txn is not None and txn.is_active:
                self.abort(txn)
