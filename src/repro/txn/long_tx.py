"""Long-duration transactions: checkout/checkin between shared and
private databases.

Section 3.3: CAx environments require "long-duration transactions,
checkout and checkin of objects between a shared database and private
databases, change notification".  A :class:`PrivateWorkspace` checks
objects out of the shared database (optionally taking persistent locks),
lets a designer edit them for arbitrarily long without holding short
locks, and checks them back in with optimistic conflict detection against
the checked-out baseline.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..core.obj import ObjectState
from ..core.oid import OID
from ..errors import TransactionError


class CheckinConflict:
    """One object that changed in the shared database since checkout."""

    __slots__ = ("oid", "baseline", "theirs", "mine")

    def __init__(
        self,
        oid: OID,
        baseline: Optional[ObjectState],
        theirs: Optional[ObjectState],
        mine: Optional[ObjectState],
    ) -> None:
        self.oid = oid
        self.baseline = baseline
        self.theirs = theirs
        self.mine = mine

    def __repr__(self) -> str:
        return "<CheckinConflict %r>" % (self.oid,)


class CheckinReport:
    def __init__(self) -> None:
        self.written: List[OID] = []
        self.deleted: List[OID] = []
        self.unchanged: List[OID] = []
        self.conflicts: List[CheckinConflict] = []

    @property
    def ok(self) -> bool:
        return not self.conflicts

    def __repr__(self) -> str:
        return "<CheckinReport %d written, %d deleted, %d conflicts>" % (
            len(self.written),
            len(self.deleted),
            len(self.conflicts),
        )


class PrivateWorkspace:
    """A designer's private database of checked-out objects.

    Two modes:

    * ``pessimistic=True`` — checkout takes an exclusive persistent lock
      on each object; nobody else can touch them until checkin/release.
      No conflicts are possible.
    * ``pessimistic=False`` (default) — optimistic: checkin compares the
      shared database's current state with the checkout baseline and
      reports conflicts instead of overwriting concurrent work.
    """

    #: Transaction-id namespace for persistent workspace locks, far away
    #: from the short-transaction counter.
    _LOCK_ID_BASE = 1 << 40

    _next_workspace = 0

    def __init__(self, db, name: str = "", pessimistic: bool = False) -> None:
        self._db = db
        self.name = name or "workspace-%d" % PrivateWorkspace._next_workspace
        PrivateWorkspace._next_workspace += 1
        self.pessimistic = pessimistic
        self._lock_owner = self._LOCK_ID_BASE + PrivateWorkspace._next_workspace
        #: Checkout baselines (state as of checkout; None = did not exist).
        self._baseline: Dict[OID, Optional[ObjectState]] = {}
        #: Local edits (state or None = locally deleted).
        self._local: Dict[OID, Optional[ObjectState]] = {}
        self.closed = False

    # -- checkout ------------------------------------------------------------

    def checkout(self, oids: Iterable[OID]) -> List[OID]:
        """Copy objects from the shared database into the workspace."""
        self._require_open()
        taken = []
        for oid in oids:
            if oid in self._baseline:
                continue
            if self.pessimistic:
                from .locks import object_resource

                self._db.locks.acquire(self._lock_owner, object_resource(oid), "X")
            state = self._db.get_state(oid).copy()
            self._baseline[oid] = state
            self._local[oid] = state.copy()
            taken.append(oid)
        return taken

    # -- private edits -----------------------------------------------------------

    def get(self, oid: OID) -> ObjectState:
        self._require_open()
        state = self._local.get(oid)
        if state is None:
            raise TransactionError(
                "object %r is not checked out (or locally deleted) in %s"
                % (oid, self.name)
            )
        return state

    def update(self, oid: OID, changes: Dict[str, Any]) -> None:
        state = self.get(oid)
        # Validate against the schema so the private copy stays well-typed.
        self._db.schema.validate_state(state.class_name, changes, partial=True)
        state.values.update(changes)

    def delete(self, oid: OID) -> None:
        self.get(oid)  # must be checked out and present
        self._local[oid] = None

    def edited(self) -> List[OID]:
        """OIDs whose local copy differs from the checkout baseline."""
        out = []
        for oid, local in self._local.items():
            baseline = self._baseline[oid]
            if local is None or baseline is None:
                if local is not baseline:
                    out.append(oid)
            elif local.values != baseline.values:
                out.append(oid)
        return sorted(out)

    # -- checkin -------------------------------------------------------------------

    def checkin(self, force: bool = False) -> CheckinReport:
        """Merge local edits back into the shared database.

        Returns a report; when conflicts exist and ``force`` is False,
        nothing is written (all-or-nothing checkin).  ``force=True``
        overwrites concurrent changes.
        """
        self._require_open()
        report = CheckinReport()

        # Phase 1: detect conflicts against current shared state.
        current: Dict[OID, Optional[ObjectState]] = {}
        for oid, baseline in self._baseline.items():
            try:
                shared = self._db.get_state(oid)
            except Exception:
                shared = None
            current[oid] = shared
            if self.pessimistic or force:
                continue
            baseline_values = baseline.values if baseline is not None else None
            shared_values = shared.values if shared is not None else None
            if baseline_values != shared_values:
                report.conflicts.append(
                    CheckinConflict(oid, baseline, shared, self._local.get(oid))
                )
        if report.conflicts and not force:
            return report

        # Phase 2: apply local edits in one shared transaction.  Under
        # pessimism the workspace's persistent locks are handed to the
        # checkin transaction so the write path cannot self-conflict.
        with self._db.transaction() as txn:
            if self.pessimistic:
                self._db.locks.transfer(self._lock_owner, txn.txn_id)
            for oid in sorted(self._baseline):
                local = self._local[oid]
                baseline = self._baseline[oid]
                if local is None:
                    if current[oid] is not None:
                        self._db.delete(oid)
                        report.deleted.append(oid)
                    continue
                if baseline is not None and local.values == baseline.values:
                    report.unchanged.append(oid)
                    continue
                self._db.put_state(local)
                report.written.append(oid)
        self.release()
        return report

    def release(self) -> None:
        """Drop the workspace and any persistent locks without writing."""
        if self.pessimistic:
            self._db.locks.release_all(self._lock_owner)
        self._baseline.clear()
        self._local.clear()
        self.closed = True

    def _require_open(self) -> None:
        if self.closed:
            raise TransactionError("workspace %s is closed" % (self.name,))

    def __repr__(self) -> str:
        return "<PrivateWorkspace %s: %d objects, %s>" % (
            self.name,
            len(self._baseline),
            "pessimistic" if self.pessimistic else "optimistic",
        )
