"""kimdb ANALYZE: ``python -m repro.tools.analyze --path db.kim``.

Runs :meth:`~repro.database.Database.analyze` against a durable
database (or, with ``--demo``, against the monitor's in-memory demo
workload) and prints the collected class and index statistics as
tables.  On a durable database the catalog is persisted alongside the
schema, so the next open — and the next ``SELECT ... FROM
SysClassStat`` — sees it without re-scanning.

``--json FILE`` additionally writes the raw
:class:`~repro.obs.stats.StatisticsCatalog` payload (the exact dict
that is persisted) for CI artifacts and offline diffing.

``--explain FILE`` (demo only) is the CI plan-quality smoke: after
ANALYZE it EXPLAINs a fixed query set, asserts every decision came from
the statistics cost model with the expected access path, and writes the
rendered ``-- cost --`` output to FILE for artifact upload.  Exits
non-zero when the optimizer stopped making stats-driven choices.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

from ..database import Database


def _render_table(rows: List[Dict[str, Any]], columns: List[str]) -> List[str]:
    if not rows:
        return ["  (no rows)"]
    def cell(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return "%.1f" % value
        return str(value)
    table = [[cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    out = ["  " + "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))]
    for line in table:
        out.append(
            "  " + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line))
        )
    return out


def render_catalog(catalog) -> str:
    lines = [
        "ANALYZE: %d classes, %d indexes (schema v%d, index epoch %d)"
        % (
            len(catalog.class_stats),
            len(catalog.index_stats),
            catalog.schema_version,
            catalog.index_epoch,
        ),
        "",
        "class statistics",
    ]
    lines.extend(
        _render_table(
            catalog.class_rows_table(),
            ["class_name", "rows", "avg_bytes", "total_bytes"],
        )
    )
    lines.append("")
    lines.append("index statistics")
    lines.extend(
        _render_table(
            catalog.index_rows_table(),
            [
                "index",
                "kind",
                "target",
                "path",
                "entries",
                "distinct_keys",
                "buckets",
                "low",
                "high",
            ],
        )
    )
    return "\n".join(lines)


#: The plan-quality smoke's fixed query set against the monitor demo
#: workload (64 Vehicles, weight-indexed): (source, expected access-path
#: description fragment).  A selective indexed equality must probe, an
#: unselective range and an unindexed equality must scan.
EXPLAIN_SMOKE_QUERIES = (
    ("SELECT v FROM Vehicle v WHERE v.weight = 910", "index-eq("),
    ("SELECT v FROM Vehicle v WHERE v.weight >= 900", "scan("),
    ("SELECT v FROM Vehicle v WHERE v.color = 'red'", "scan("),
)


def run_explain_smoke(db) -> "Tuple[str, List[str]]":
    """EXPLAIN the fixed query set; return (rendered output, failures)."""
    sections: List[str] = []
    failures: List[str] = []
    for source, expected in EXPLAIN_SMOKE_QUERIES:
        explain = db.explain(source)
        sections.append("$ EXPLAIN %s\n%s" % (source, explain.render()))
        decision = getattr(explain.plan, "cost", None)
        if decision is None or decision.mode != "statistics":
            failures.append(
                "%s: expected a statistics-driven decision, got %s"
                % (
                    source,
                    "no cost decision" if decision is None
                    else "heuristic (%s)" % decision.reason,
                )
            )
        if expected not in explain.plan.access.description:
            failures.append(
                "%s: expected access matching %r, cost model chose %s"
                % (source, expected, explain.plan.access.description)
            )
    return "\n\n".join(sections) + "\n", failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.analyze",
        description="collect and persist class/index statistics",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--path", help="durable database path to analyze")
    target.add_argument(
        "--demo",
        action="store_true",
        help="analyze the in-memory monitor demo workload instead",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the raw statistics catalog payload as JSON",
    )
    parser.add_argument(
        "--explain",
        metavar="FILE",
        help="(with --demo) EXPLAIN a fixed query set after ANALYZE, "
        "assert statistics-driven plan choices, write the output to FILE",
    )
    args = parser.parse_args(argv)
    if args.explain and not args.demo:
        parser.error("--explain requires --demo (the fixed query set "
                     "targets the demo workload)")

    if args.demo:
        from .monitor import build_demo_database

        db = build_demo_database()
    else:
        db = Database(args.path)
    try:
        catalog = db.analyze()
        print(render_catalog(catalog))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(catalog.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("\nwrote %s" % args.json)
        if args.explain:
            output, failures = run_explain_smoke(db)
            with open(args.explain, "w", encoding="utf-8") as handle:
                handle.write(output)
            print(
                "\nplan-quality smoke: %d queries explained, wrote %s"
                % (len(EXPLAIN_SMOKE_QUERIES), args.explain)
            )
            if failures:
                for failure in failures:
                    print("PLAN-QUALITY FAILURE: %s" % failure, file=sys.stderr)
                return 1
    except BrokenPipeError:
        # Downstream reader (head, grep -m, a closed pager) went away.
        sys.stderr.close()
        return 0
    finally:
        db.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
