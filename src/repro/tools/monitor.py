"""kimdb monitor: ``python -m repro.tools.monitor --once``.

A top-like front end over the system statistics views.  Every panel is
the result of a *normal OQL query* against a system view — the monitor
contains no privileged introspection, only::

    SysWaitEvent order by total_wait desc limit 10
    SysTransaction order by txn
    SysLock where granted = false
    SysStat order by name
    ...

Because there is no server process to attach to, the monitor opens an
in-memory demo database and drives a small workload — inserts, queries,
and a deliberate two-transaction lock conflict — so every panel has
something to show.  ``--once`` prints a single snapshot and exits (the
mode CI exercises); the default loops until interrupted.  With
``--prometheus`` the metric registry is rendered in the Prometheus text
exposition format instead of panels.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from ..core.attribute import AttributeDef
from ..database import Database
from ..obs.export import render_prometheus


def build_demo_database() -> Database:
    """An in-memory database with enough activity to populate the views."""
    db = Database(slow_op_threshold=0.0)
    db.define_class(
        "Vehicle",
        attributes=[
            AttributeDef("color", "String", default="white"),
            AttributeDef("weight", "Integer"),
        ],
    )
    for i in range(64):
        db.new("Vehicle", {"color": ("red", "green", "blue")[i % 3], "weight": 900 + i})
    db.create_class_index("Vehicle", "weight")
    db.execute("SELECT v FROM Vehicle v WHERE v.weight >= 950")
    db.execute("Vehicle where color = 'red' order by weight desc limit 5")
    # Repeat one query so SysQueryStat shows calls > 1 and a cache hit,
    # and ANALYZE so SysClassStat/SysIndexStat have rows.
    db.execute("SELECT v FROM Vehicle v WHERE v.weight >= 950")
    db.analyze()
    _demo_lock_conflict(db)
    return db


def _demo_lock_conflict(db: Database, hold_seconds: float = 0.05) -> None:
    """Two transactions contending for one object: a real Lock wait."""
    target = db.select("Vehicle where color = 'red' limit 1")[0]
    writer = db.txns.begin()
    db.update(target.oid, {"weight": 2000})  # writer holds X
    started = threading.Event()

    def blocked_reader() -> None:
        with db.txns.begin():
            started.set()
            db.get_state(target.oid)  # blocks until the writer commits

    thread = threading.Thread(target=blocked_reader)
    thread.start()
    started.wait()
    time.sleep(hold_seconds)
    writer.commit()
    thread.join()


# -- rendering ---------------------------------------------------------------


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return "%.4f" % value
    return str(value)


def _render_table(rows: List[Dict[str, Any]], columns: List[str]) -> List[str]:
    if not rows:
        return ["  (no rows)"]
    table = [[_format_cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    out = ["  " + "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))]
    for line in table:
        out.append("  " + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return out


#: (panel title, system-view query, columns shown) — each panel is one
#: ordinary OQL query; the monitor has no other data source.
PANELS = [
    (
        "top waits",
        "SysWaitEvent order by total_wait desc limit 10",
        ["kind", "target", "count", "total_wait", "avg_wait", "last_txn", "last_blocker"],
    ),
    (
        "active transactions",
        "SysTransaction order by txn",
        ["txn", "status", "age", "operations", "locks_held", "wait_seconds", "waiting_for"],
    ),
    (
        "blocked lock requests",
        "SysLock where granted = false",
        ["resource", "txn", "mode"],
    ),
    (
        "slow operations",
        "SysSlowOp order by elapsed desc limit 10",
        ["name", "elapsed", "threshold", "target", "trace"],
    ),
    (
        "hot queries",
        "SysQueryStat order by calls desc limit 10",
        ["fingerprint", "target", "calls", "plan_cache_hits", "mean_seconds", "p95", "lock_wait"],
    ),
    (
        "class statistics (ANALYZE)",
        "SysClassStat order by rows desc limit 10",
        ["class_name", "rows", "avg_bytes", "total_bytes"],
    ),
    (
        "index statistics (ANALYZE)",
        "SysIndexStat order by entries desc limit 10",
        ["index", "kind", "path", "entries", "distinct_keys", "buckets", "low", "high"],
    ),
    (
        "last query pipeline",
        "SysOperator order by position",
        ["position", "op", "detail", "rows_out", "elapsed"],
    ),
    (
        "key statistics",
        "SysStat where kind = 'counter' order by name",
        ["name", "value"],
    ),
]


def render_snapshot(db: Database) -> str:
    lines = ["kimdb monitor — %s" % time.strftime("%Y-%m-%d %H:%M:%S")]
    for title, query, columns in PANELS:
        lines.append("")
        lines.append("%s   [%s]" % (title, query))
        lines.extend(_render_table(db.select(query), columns))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.monitor",
        description="top-like monitor over kimdb's system statistics views",
    )
    parser.add_argument(
        "--once", action="store_true", help="print one snapshot and exit"
    )
    parser.add_argument(
        "--prometheus",
        action="store_true",
        help="render the metrics registry in Prometheus text format instead",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh interval in seconds (default: 2)",
    )
    args = parser.parse_args(argv)

    db = build_demo_database()
    try:
        if args.prometheus:
            sys.stdout.write(
                render_prometheus(db.metrics, querystats=db.query_stats)
            )
            return 0
        if args.once:
            print(render_snapshot(db))
            return 0
        while True:
            print(render_snapshot(db))
            print()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        # Downstream reader (head, grep -m, a closed pager) went away.
        sys.stderr.close()
        return 0
    finally:
        db.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
