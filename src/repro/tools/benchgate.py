"""Performance-regression gate over benchmark artifacts.

Compares freshly produced ``BENCH_*.json`` files against committed
baselines and fails (exit 1) when an engine cost counter regressed
beyond tolerance::

    python -m repro.tools.benchgate \
        --baseline benchmarks/baselines --fresh benchmarks

By default only *deterministic* cost counters are gated — physical
I/O, WAL traffic, lock work, rows examined — because they measure the
same workload identically on any machine; wall-clock series vary with
the runner and would make the gate flaky.  ``--include-timings`` adds
the per-series millisecond figures under a (much looser) separate
tolerance for local use.

A regression is an *increase* in a cost counter; decreases are reported
as improvements and never fail the gate.  Counters whose baseline is
tiny (below ``--min-base``) are skipped: going from 2 reads to 4 is
noise, going from 2000 to 4000 is not.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Deterministic cost-counter prefixes the gate compares.  More work on
#: any of these for the same benchmark workload is a real regression
#: regardless of how fast the runner is.
COST_PREFIXES = (
    "pager.",
    "buffer.faults",
    "buffer.evictions",
    "buffer.flushes",
    "wal.appends",
    "wal.append_bytes",
    "wal.flushes",
    "wal.syncs",
    "wal.page_images",
    "locks.acquisitions",
    "locks.waits",
    "locks.deadlocks",
    "locks.upgrades",
    "query.rows_examined",
    "query.index_probes",
    "fault.",
    "server.requests",
    "server.rows_streamed",
    "query.plan_cache.",
    "query.cost.",
    "rewrite.",
    "txn.snapshot.",
    "wal.group_commit.",
    "query.stats.",
    "analyze.",
)


class Finding:
    """One compared counter: regression, improvement, or steady."""

    __slots__ = ("bench", "metric", "base", "fresh", "kind")

    def __init__(self, bench: str, metric: str, base: float, fresh: float, kind: str) -> None:
        self.bench = bench
        self.metric = metric
        self.base = base
        self.fresh = fresh
        self.kind = kind  # "regression" | "improvement" | "missing"

    @property
    def delta_pct(self) -> float:
        if self.base == 0:
            return float("inf") if self.fresh else 0.0
        return 100.0 * (self.fresh - self.base) / self.base

    def render(self) -> str:
        if self.kind == "missing":
            return "%-28s %-34s baseline exists but no fresh artifact" % (
                self.bench,
                self.metric,
            )
        return "%-28s %-34s %12g -> %12g  (%+.1f%%)" % (
            self.bench,
            self.metric,
            self.base,
            self.fresh,
            self.delta_pct,
        )


def _gated_metrics(artifact: Dict[str, Any]) -> Dict[str, float]:
    """The scalar cost counters of one artifact's ``metrics`` block."""
    out: Dict[str, float] = {}
    for name, value in artifact.get("metrics", {}).items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue  # histograms are dicts; skip non-scalars
        if any(name.startswith(prefix) for prefix in COST_PREFIXES):
            out[name] = float(value)
    return out


def _timing_series(artifact: Dict[str, Any]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for i, point in enumerate(artifact.get("series", [])):
        if isinstance(point, dict) and isinstance(point.get("ms"), (int, float)):
            label = str(
                point.get("plan") or point.get("access_path") or "series[%d]" % i
            )
            out["ms:%s" % label] = float(point["ms"])
    return out


def _artifacts(directory: str) -> Iterator[Tuple[str, str]]:
    for name in sorted(os.listdir(directory)):
        if name.startswith("BENCH_") and name.endswith(".json"):
            yield name, os.path.join(directory, name)


def compare_dirs(
    baseline_dir: str,
    fresh_dir: str,
    tolerance: float = 0.25,
    min_base: float = 100.0,
    include_timings: bool = False,
    timing_tolerance: float = 1.0,
) -> List[Finding]:
    """All regressions/improvements of fresh artifacts vs their baselines.

    Every baseline must have a fresh counterpart (a benchmark that
    stopped producing its artifact is itself a regression); fresh
    artifacts without baselines are new benchmarks and pass silently.
    """
    findings: List[Finding] = []
    fresh_paths = dict(_artifacts(fresh_dir)) if os.path.isdir(fresh_dir) else {}
    for name, base_path in _artifacts(baseline_dir):
        bench = name[len("BENCH_") : -len(".json")]
        fresh_path = fresh_paths.get(name)
        if fresh_path is None:
            findings.append(Finding(bench, "<artifact>", 0, 0, "missing"))
            continue
        with open(base_path, "r", encoding="utf-8") as handle:
            base = json.load(handle)
        with open(fresh_path, "r", encoding="utf-8") as handle:
            fresh = json.load(handle)
        pairs = [(_gated_metrics(base), _gated_metrics(fresh), tolerance)]
        if include_timings:
            pairs.append((_timing_series(base), _timing_series(fresh), timing_tolerance))
        for base_metrics, fresh_metrics, tol in pairs:
            for metric, base_value in sorted(base_metrics.items()):
                fresh_value = fresh_metrics.get(metric)
                if fresh_value is None:
                    continue  # renamed/removed counter: not a perf signal
                if base_value < min_base and fresh_value < min_base:
                    continue
                if fresh_value > base_value * (1.0 + tol):
                    findings.append(
                        Finding(bench, metric, base_value, fresh_value, "regression")
                    )
                elif fresh_value < base_value * (1.0 - tol):
                    findings.append(
                        Finding(bench, metric, base_value, fresh_value, "improvement")
                    )
    return findings


def list_rows(
    baseline_dir: str, fresh_dir: str
) -> List[Tuple[str, str, Optional[float], Optional[float]]]:
    """Every gated counter's (bench, metric, baseline, fresh) pair.

    Unlike :func:`compare_dirs` this reports *all* counters — steady
    ones included — so drift inside the tolerance band stays visible on
    green runs.  A ``None`` side means the counter (or the artifact)
    exists only on the other side.
    """
    rows: List[Tuple[str, str, Optional[float], Optional[float]]] = []
    base_paths = dict(_artifacts(baseline_dir)) if os.path.isdir(baseline_dir) else {}
    fresh_paths = dict(_artifacts(fresh_dir)) if os.path.isdir(fresh_dir) else {}
    for name in sorted(set(base_paths) | set(fresh_paths)):
        bench = name[len("BENCH_") : -len(".json")]
        sides: List[Dict[str, float]] = []
        for paths in (base_paths, fresh_paths):
            path = paths.get(name)
            if path is None:
                sides.append({})
                continue
            with open(path, "r", encoding="utf-8") as handle:
                sides.append(_gated_metrics(json.load(handle)))
        base_metrics, fresh_metrics = sides
        for metric in sorted(set(base_metrics) | set(fresh_metrics)):
            rows.append(
                (bench, metric, base_metrics.get(metric), fresh_metrics.get(metric))
            )
    return rows


def render_markdown_deltas(
    rows: List[Tuple[str, str, Optional[float], Optional[float]]]
) -> str:
    """The ``--list`` table as GitHub-flavored markdown for step summaries."""
    def cell(value: Optional[float]) -> str:
        return "%g" % value if value is not None else "—"

    lines = [
        "### benchgate counter deltas (baseline vs fresh)",
        "",
        "| bench | counter | baseline | fresh | delta |",
        "| --- | --- | ---: | ---: | ---: |",
    ]
    for bench, metric, base, fresh in rows:
        if base is None or fresh is None:
            delta = "n/a"
        elif base == 0:
            delta = "+inf" if fresh else "0.0%"
        else:
            delta = "%+.1f%%" % (100.0 * (fresh - base) / base)
        lines.append(
            "| %s | %s | %s | %s | %s |"
            % (bench, metric, cell(base), cell(fresh), delta)
        )
    if not rows:
        lines.append("| (no gated counters found) | | | | |")
    return "\n".join(lines)


def update_baselines(baseline_dir: str, fresh_dir: str) -> List[str]:
    """Copy every fresh artifact over its baseline; returns names written."""
    os.makedirs(baseline_dir, exist_ok=True)
    written = []
    for name, fresh_path in _artifacts(fresh_dir):
        with open(fresh_path, "r", encoding="utf-8") as handle:
            data = handle.read()
        with open(os.path.join(baseline_dir, name), "w", encoding="utf-8") as handle:
            handle.write(data)
        written.append(name)
    return written


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.benchgate", description=__doc__
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/baselines",
        help="directory of committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--fresh",
        default="benchmarks",
        help="directory of freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative increase of a cost counter (default 0.25)",
    )
    parser.add_argument(
        "--min-base",
        type=float,
        default=100.0,
        help="skip counters whose baseline and fresh values are both below this",
    )
    parser.add_argument(
        "--include-timings",
        action="store_true",
        help="also gate wall-clock series (noisy; off in CI)",
    )
    parser.add_argument(
        "--timing-tolerance",
        type=float,
        default=1.0,
        help="tolerance for --include-timings comparisons (default 1.0 = 2x)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy fresh artifacts over the baselines instead of comparing",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_deltas",
        help="print every gated counter's baseline-vs-fresh delta as a "
        "markdown table (appended to $GITHUB_STEP_SUMMARY when set) "
        "instead of gating",
    )
    args = parser.parse_args(argv)

    if args.list_deltas:
        table = render_markdown_deltas(list_rows(args.baseline, args.fresh))
        summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary_path:
            with open(summary_path, "a", encoding="utf-8") as handle:
                handle.write(table + "\n")
        try:
            print(table)
        except BrokenPipeError:
            sys.stderr.close()  # downstream reader (head, pager) went away
        return 0

    if args.update:
        for name in update_baselines(args.baseline, args.fresh):
            print("baseline updated: %s" % name)
        return 0

    if not os.path.isdir(args.baseline):
        print("benchgate: no baseline directory %r — nothing to gate" % args.baseline)
        return 0

    findings = compare_dirs(
        args.baseline,
        args.fresh,
        tolerance=args.tolerance,
        min_base=args.min_base,
        include_timings=args.include_timings,
        timing_tolerance=args.timing_tolerance,
    )
    regressions = [f for f in findings if f.kind in ("regression", "missing")]
    improvements = [f for f in findings if f.kind == "improvement"]
    for finding in improvements:
        print("IMPROVED   %s" % finding.render())
    for finding in regressions:
        print("REGRESSED  %s" % finding.render())
    if regressions:
        print(
            "\nbenchgate: %d regression(s) beyond %.0f%% tolerance; if the "
            "cost change is intended, refresh the baselines with --update"
            % (len(regressions), 100 * args.tolerance)
        )
        return 1
    print(
        "benchgate: OK (%d improvement(s), 0 regressions at %.0f%% tolerance)"
        % (len(improvements), 100 * args.tolerance)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
