"""Engine lint CLI: ``python -m repro.tools.lint src/repro --strict``.

Runs the :mod:`repro.analysis.lint` rules (lock ordering, resource
balance, cross-package privacy, mutable defaults, bare excepts) over the
given files/directories and prints one line per violation::

    src/repro/txn/locks.py:86:8: [lock-order] acquires '_mutex' ...

Exit status: 0 when clean; with ``--strict``, 1 when any violation was
found (CI runs strict so every violation is a hard gate failure).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..analysis.lint import ALL_RULES, LintConfig, engine_config, lint_paths


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description="kimdb engine lints (lock order, resource balance, privacy).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any violation is found (CI gate mode)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        choices=ALL_RULES,
        metavar="RULE",
        help="run only this rule (repeatable); default: all rules",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print known rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(rule)
        return 0
    if not args.paths:
        parser.error("the following arguments are required: paths")

    base = engine_config()
    config = LintConfig(
        lock_lattice=base.lock_lattice,
        with_required=base.with_required,
        acquire_pairs=base.acquire_pairs,
        rules=args.rule if args.rule else None,
    )
    try:
        violations = lint_paths(args.paths, config)
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    for violation in violations:
        print(violation.render())
    if violations:
        print(
            "%d violation%s found." % (len(violations), "" if len(violations) == 1 else "s"),
            file=sys.stderr,
        )
        return 1 if args.strict else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
