"""Database tools (Section 5.1): schema browsing.

"The complexity of the object-oriented database schema, with the class
hierarchy and aggregation hierarchies, significantly complicates the
problems of logical and physical database design.  Thus the need for
friendly and efficient design aids ... is significantly stronger than
that for relational databases."  The IRIS and O2 projects built
graphical browsers; kimdb's equivalent is textual: hierarchy trees,
per-class descriptions with inheritance provenance, aggregation-graph
rendering and a catalog report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from ..core.primitives import BUILTIN_CLASSES, is_primitive_class

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database


def class_tree(db: "Database", root: str = "Object", show_builtin: bool = False) -> str:
    """Render the class hierarchy under ``root`` as an indented tree.

    Classes with multiple superclasses appear under each parent, marked
    with ``*`` after their first occurrence (it is a DAG, not a tree).
    """
    builtin = set(BUILTIN_CLASSES)
    seen: Set[str] = set()
    lines: List[str] = []

    def render(name: str, depth: int) -> None:
        if not show_builtin and name in builtin and name != root:
            return
        marker = ""
        if name in seen:
            marker = " *"
        seen.add(name)
        extent = db.storage.count_class(name)
        extent_text = " (%d)" % extent if extent else ""
        lines.append("%s%s%s%s" % ("  " * depth, name, extent_text, marker))
        if marker:
            return
        for child in db.schema.direct_subclasses(name):
            render(child, depth + 1)

    render(root, 0)
    return "\n".join(lines)


def describe_class(db: "Database", class_name: str) -> str:
    """Full description: superclasses, MRO, attributes with provenance,
    methods, direct extent size and covering indexes."""
    cls = db.schema.get_class(class_name)
    lines = ["class %s" % class_name]
    if cls.doc:
        lines.append("  doc: %s" % cls.doc)
    lines.append("  superclasses: %s" % (", ".join(cls.superclasses) or "(root)"))
    lines.append("  mro: %s" % " -> ".join(db.schema.mro(class_name)))
    if cls.abstract:
        lines.append("  abstract")
    lines.append("  attributes:")
    for name, attr in sorted(db.schema.attributes(class_name).items()):
        flags = []
        if attr.multi:
            flags.append("multi")
        if attr.required:
            flags.append("required")
        if attr.composite:
            flags.append(
                "composite(%s%s)"
                % ("exclusive" if attr.exclusive else "shared",
                   ", dependent" if attr.dependent else "")
            )
        origin = "" if attr.defined_in == class_name else "  [from %s]" % attr.defined_in
        lines.append(
            "    %-16s %-14s %s%s"
            % (name, attr.domain, " ".join(flags), origin)
        )
    methods = db.schema.methods(class_name)
    if methods:
        lines.append("  methods:")
        for name, meth in sorted(methods.items()):
            origin = "" if meth.defined_in == class_name else "  [from %s]" % meth.defined_in
            lines.append("    %s()%s" % (name, origin))
    lines.append("  direct extent: %d objects" % db.storage.count_class(class_name))
    covering = [
        index.name
        for index in db.indexes.all_indexes()
        if class_name in index.maintained_classes()
    ]
    if covering:
        lines.append("  indexes: %s" % ", ".join(covering))
    return "\n".join(lines)


def aggregation_graph(db: "Database", root: str, max_depth: int = 4) -> str:
    """Render the aggregation (attribute/domain) graph from ``root``.

    Cycles — which the paper notes the aggregation graph admits — are
    cut with a ``(cycle)`` marker.
    """
    lines: List[str] = []

    def render(name: str, depth: int, path: Set[str]) -> None:
        if depth > max_depth:
            return
        for attr_name, attr in sorted(db.schema.attributes(name).items()):
            domain = attr.domain
            if is_primitive_class(domain) or domain in ("Any", "Object"):
                continue
            if not db.schema.has_class(domain):
                continue
            suffix = ""
            if domain in path:
                suffix = " (cycle)"
            lines.append(
                "%s%s.%s -> %s%s"
                % ("  " * depth, name, attr_name, domain, suffix)
            )
            if not suffix:
                render(domain, depth + 1, path | {domain})

    lines.append(root)
    render(root, 0, {root})
    return "\n".join(lines)


def catalog_report(db: "Database") -> str:
    """One-page inventory: classes, extents, indexes, views, locks."""
    lines = ["=== kimdb catalog ==="]
    user_classes = sorted(c.name for c in db.schema.user_classes())
    lines.append("classes (%d):" % len(user_classes))
    for name in user_classes:
        lines.append(
            "  %-24s extent=%-6d subclasses=%s"
            % (
                name,
                db.storage.count_class(name),
                ",".join(db.schema.direct_subclasses(name)) or "-",
            )
        )
    indexes = db.indexes.describe()
    lines.append("indexes (%d):" % len(indexes))
    for entry in indexes:
        lines.append(
            "  %-28s %-18s on %s.%s (%d entries)"
            % (entry["name"], entry["kind"], entry["class"], entry["path"], entry["entries"])
        )
    if db.views is not None and db.views.names():
        lines.append("views (%d): %s" % (len(db.views.names()), ", ".join(db.views.names())))
    lines.append("objects: %d" % len(db.storage.directory))
    lines.append("buffer: %s" % db.storage.buffer.stats.snapshot())
    return "\n".join(lines)
