"""Database tools (Section 5.1): schema browsing, design advice."""

from .advisor import IndexAdvisor, Recommendation
from .browser import aggregation_graph, catalog_report, class_tree, describe_class

__all__ = [
    "IndexAdvisor",
    "Recommendation",
    "aggregation_graph",
    "catalog_report",
    "class_tree",
    "describe_class",
]
