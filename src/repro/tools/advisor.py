"""Physical design advisor (Section 5.1).

"The need for friendly and efficient design aids for the logical and
physical design of object-oriented databases is significantly stronger
than that for relational databases."  The advisor watches a query
workload and recommends the index kind each recurring predicate calls
for: a class-hierarchy index for hierarchy-scoped single-attribute
predicates, a single-class index for ``ONLY``-scoped ones, a
nested-attribute index for path predicates — exactly the decision table
of Section 3.2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from ..query.ast import Comparison, Query, conjuncts
from ..query.parser import parse_query

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database

#: Operators a B+-tree index can serve.
_SARGABLE = ("=", "<", "<=", ">", ">=", "in", "contains")


class Recommendation:
    """One advised index."""

    __slots__ = ("kind", "class_name", "path", "hits", "create_call")

    def __init__(self, kind: str, class_name: str, path: Tuple[str, ...], hits: int) -> None:
        self.kind = kind
        self.class_name = class_name
        self.path = path
        self.hits = hits
        if kind == "nested-attribute":
            self.create_call = "db.create_nested_index(%r, %r)" % (class_name, list(path))
        elif kind == "single-class":
            self.create_call = "db.create_class_index(%r, %r)" % (class_name, path[0])
        else:
            self.create_call = "db.create_hierarchy_index(%r, %r)" % (class_name, path[0])

    def apply(self, db: "Database"):
        """Create the recommended index on ``db``."""
        if self.kind == "nested-attribute":
            return db.create_nested_index(self.class_name, list(self.path))
        if self.kind == "single-class":
            return db.create_class_index(self.class_name, self.path[0])
        return db.create_hierarchy_index(self.class_name, self.path[0])

    def __repr__(self) -> str:
        return "<Recommendation %s on %s.%s (%d hits)>" % (
            self.kind,
            self.class_name,
            ".".join(self.path),
            self.hits,
        )


class IndexAdvisor:
    """Collects a workload, recommends indexes the planner would use."""

    def __init__(self, db: "Database") -> None:
        self.db = db
        #: (class, path, hierarchy?) -> number of sargable occurrences.
        self._demand: Dict[Tuple[str, Tuple[str, ...], bool], int] = {}
        self.observed = 0

    # -- workload capture ------------------------------------------------------

    def observe(self, query: Union[str, Query]) -> None:
        """Record one workload query (text or AST)."""
        if isinstance(query, str):
            query = parse_query(query)
        if self.db.views is not None:
            query = self.db.views.rewrite(query)
        self.observed += 1
        for predicate in conjuncts(query.where):
            if not isinstance(predicate, Comparison):
                continue
            if predicate.op not in _SARGABLE:
                continue
            key = (query.target_class, predicate.path.steps, query.hierarchy)
            self._demand[key] = self._demand.get(key, 0) + 1

    # -- recommendation ---------------------------------------------------------

    def recommend(self, min_hits: int = 2) -> List[Recommendation]:
        """Indexes worth creating, most-demanded first.

        Skips predicates an existing index already covers, classes whose
        whole hierarchy extent is trivial, and anything seen fewer than
        ``min_hits`` times.
        """
        out: List[Recommendation] = []
        for (class_name, path, hierarchy), hits in self._demand.items():
            if hits < min_hits:
                continue
            if not self.db.schema.has_class(class_name):
                continue
            scope = (
                set(self.db.schema.hierarchy_of(class_name))
                if hierarchy
                else {class_name}
            )
            if self.db.indexes.find_index(class_name, path, scope) is not None:
                continue  # already covered
            extent = sum(self.db.storage.count_class(cls) for cls in scope)
            if extent < 16:
                continue  # a scan is fine
            if len(path) > 1:
                kind = "nested-attribute"
            elif hierarchy:
                kind = "class-hierarchy"
            else:
                kind = "single-class"
            out.append(Recommendation(kind, class_name, path, hits))
        out.sort(key=lambda r: (-r.hits, r.class_name, r.path))
        return out

    def report(self, min_hits: int = 2) -> str:
        recommendations = self.recommend(min_hits)
        if not recommendations:
            return "no index recommendations (observed %d queries)" % self.observed
        lines = ["index recommendations (observed %d queries):" % self.observed]
        for rec in recommendations:
            lines.append(
                "  %-18s %s.%s  (%d hits)   %s"
                % (rec.kind, rec.class_name, ".".join(rec.path), rec.hits, rec.create_call)
            )
        return "\n".join(lines)
