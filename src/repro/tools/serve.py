"""kimdb server: ``python -m repro.tools.serve``.

Serves one database file (or an in-memory Figure 1 demo) over the
repro.server wire protocol.  ``--smoke`` runs the end-to-end smoke used
by CI: start a server on an ephemeral port, drive a pooled multi-client
workload including a mid-transaction client kill, then assert the
engine is clean — no sessions, no live transactions, no residual locks.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..bench.schemas import build_vehicle_schema, populate_vehicles
from ..database import Database
from ..server import Client, ConnectionPool, Server


def build_demo_database(n_vehicles: int = 120) -> Database:
    db = Database()
    build_vehicle_schema(db)
    populate_vehicles(db, n_vehicles=n_vehicles, n_companies=8)
    return db


def _wait_until(predicate, timeout: float = 5.0) -> bool:
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def run_smoke() -> int:
    """Multi-client smoke: pooled workload + crash-mid-txn, then audit."""
    db = build_demo_database()
    failures: List[str] = []
    with Server(db, port=0, workers=4, idle_timeout=30.0, lock_timeout=2.0) as server:
        host, port = server.address
        print("smoke: server on %s:%d" % (host, port))

        with ConnectionPool(host, port, size=4) as pool:
            # Plain reads through pooled connections.
            with pool.connection() as c:
                rows = c.query("Automobile where color = 'blue'")
                print("smoke: query returned %d automobiles" % len(rows))
                if not rows:
                    failures.append("blue-automobile query returned no rows")

            # A streamed read through a server-side cursor.
            with pool.connection() as c:
                streamed = sum(1 for _row in c.query_stream("Vehicle", batch=16))
                print("smoke: streamed %d vehicles" % streamed)
                if not streamed:
                    failures.append("vehicle stream yielded no rows")

            # A committed transactional write, visible to a second client.
            with pool.connection() as c:
                target = c.query("Truck limit 1")[0]
                with c.transaction():
                    c.update(target, {"color": "smoke-green"})
            with pool.connection() as c:
                seen = c.get(target)["values"]["color"]
                if seen != "smoke-green":
                    failures.append("committed write not visible: %r" % seen)

        # Crash a client mid-transaction: the server must roll back and
        # free its locks without any goodbye from the client.
        victim = Client(host, port)
        victim.begin()
        victim.update(target, {"color": "doomed"})
        victim.kill()
        drained = _wait_until(lambda: len(server.sessions) == 0)
        if not drained:
            failures.append("killed client's session not released")
        if not _wait_until(lambda: not db.txns.active_transactions()):
            failures.append(
                "live transactions after kill: %r" % db.txns.active_transactions()
            )
        if db.select("SysLock"):
            failures.append("residual locks after kill: %r" % db.select("SysLock"))
        if db.select("SysSession"):
            failures.append("SysSession not empty after kill")
        with Client(host, port) as probe:
            color = probe.get(target)["values"]["color"]
            if color != "smoke-green":
                failures.append("kill did not roll back: color=%r" % color)
        print("smoke: crash-mid-txn rolled back, locks free")

    db.close()
    if failures:
        for failure in failures:
            print("smoke FAIL: %s" % failure, file=sys.stderr)
        return 1
    print("smoke OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.serve",
        description="serve a kimdb database over the repro.server protocol",
    )
    parser.add_argument("--path", help="database file to open (default: in-memory demo)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=1990)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="evict sessions idle for this many seconds",
    )
    parser.add_argument(
        "--lock-timeout",
        type=float,
        default=None,
        help="override the engine's default lock wait timeout",
    )
    parser.add_argument(
        "--no-group-commit",
        action="store_true",
        help="fsync each commit individually instead of batching "
        "concurrent commits into one WAL sync",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the multi-client smoke on an ephemeral port and exit",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke()

    db = (
        Database(args.path, group_commit=not args.no_group_commit)
        if args.path
        else build_demo_database()
    )
    server = Server(
        db,
        host=args.host,
        port=args.port,
        workers=args.workers,
        idle_timeout=args.idle_timeout,
        lock_timeout=args.lock_timeout,
    )
    try:
        server.start()
        print("kimdb server listening on %s:%d" % server.address)
        print("database: %s" % (args.path or "in-memory Figure 1 demo"))
        server.serve_forever()
    finally:
        server.stop()
        db.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
