"""Views: virtual classes defined by queries (Section 5.4).

The paper notes no 1990 OODB supported views; kimdb implements them the
way the section motivates:

* a view is a named virtual class derived by a query over a stored class
  (or another view — views stack);
* a query against the view rewrites into a query against the base class
  with the view predicate conjoined (logical partitioning of an extent);
* an optional *rename map* re-labels attributes — one form of **schema
  versioning**: old applications keep querying the old attribute names
  through a view after a schema change;
* granting ``read`` on the view name (not the base class) yields
  **content-based authorization**: subjects see exactly the objects that
  satisfy the view predicate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Union

from ..errors import ViewError
from ..query.ast import (
    AdtPredicate,
    And,
    Comparison,
    Expr,
    MethodCall,
    Not,
    Or,
    Path,
    Query,
)
from ..query.parser import parse_query

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database


class ViewDef:
    """One view: base query + attribute rename map."""

    __slots__ = ("name", "query", "rename", "doc")

    def __init__(
        self,
        name: str,
        query: Query,
        rename: Optional[Dict[str, str]] = None,
        doc: str = "",
    ) -> None:
        self.name = name
        self.query = query
        #: view attribute name -> base dotted path (e.g. {"maker": "manufacturer.name"}).
        self.rename = dict(rename or {})
        self.doc = doc

    def __repr__(self) -> str:
        return "<ViewDef %s over %s>" % (self.name, self.query.target_class)


class ViewManager:
    """View registry and query rewriter."""

    def __init__(self, db: "Database") -> None:
        self.db = db
        self._views: Dict[str, ViewDef] = {}

    # -- definition ------------------------------------------------------------

    def define_view(
        self,
        name: str,
        query: Union[str, Query],
        rename: Optional[Dict[str, str]] = None,
        doc: str = "",
    ) -> ViewDef:
        if name in self._views:
            raise ViewError("view %r already exists" % (name,))
        if self.db.schema.has_class(name):
            raise ViewError("%r is a stored class; views may not shadow classes" % (name,))
        if isinstance(query, str):
            query = parse_query(query)
        if query.projections is not None:
            raise ViewError(
                "view queries must select whole objects (no projections)"
            )
        base = query.target_class
        if not self.db.schema.has_class(base) and not self.is_view(base):
            raise ViewError("view %r is over unknown class %r" % (name, base))
        view = ViewDef(name, query, rename, doc)
        self._views[name] = view
        return view

    def drop_view(self, name: str) -> None:
        if name not in self._views:
            raise ViewError("no view named %r" % (name,))
        del self._views[name]

    def is_view(self, name: str) -> bool:
        return name in self._views

    def get(self, name: str) -> ViewDef:
        view = self._views.get(name)
        if view is None:
            raise ViewError("no view named %r" % (name,))
        return view

    def names(self) -> List[str]:
        return sorted(self._views)

    # -- rewriting ------------------------------------------------------------

    def rewrite(self, query: Query) -> Query:
        """Expand view targets until the query addresses a stored class."""
        depth = 0
        while self.is_view(query.target_class):
            depth += 1
            if depth > 32:
                raise ViewError(
                    "view expansion exceeded depth 32 (cyclic view definition?)"
                )
            query = self._expand_once(query)
        return query

    def _expand_once(self, query: Query) -> Query:
        view = self.get(query.target_class)
        base = view.query

        where = self._rewrite_expr(query.where, view)
        if base.where is not None and where is not None:
            where = And([base.where, where])
        elif base.where is not None:
            where = base.where

        projections = None
        if query.projections is not None:
            projections = [self._rewrite_path(p, view) for p in query.projections]
        order_by = (
            self._rewrite_path(query.order_by, view)
            if query.order_by is not None
            else None
        )
        aggregates = None
        if query.aggregates is not None:
            from ..query.ast import Aggregate

            aggregates = [
                Aggregate(
                    agg.fn,
                    self._rewrite_path(agg.path, view) if agg.path is not None else None,
                )
                for agg in query.aggregates
            ]
        group_by = (
            self._rewrite_path(query.group_by, view)
            if query.group_by is not None
            else None
        )
        return Query(
            target_class=base.target_class,
            variable=query.variable,
            where=where,
            hierarchy=base.hierarchy,
            projections=projections,
            order_by=order_by,
            descending=query.descending,
            limit=query.limit,
            aggregates=aggregates,
            group_by=group_by,
        )

    def _rewrite_path(self, path: Path, view: ViewDef) -> Path:
        mapped = view.rename.get(path.steps[0])
        if mapped is None:
            return path
        return Path(tuple(mapped.split(".")) + path.steps[1:])

    def _rewrite_expr(self, expr: Optional[Expr], view: ViewDef) -> Optional[Expr]:
        if expr is None:
            return None
        if isinstance(expr, Comparison):
            return Comparison(expr.op, self._rewrite_path(expr.path, view), expr.const)
        if isinstance(expr, And):
            return And([self._rewrite_expr(op, view) for op in expr.operands])
        if isinstance(expr, Or):
            return Or([self._rewrite_expr(op, view) for op in expr.operands])
        if isinstance(expr, Not):
            return Not(self._rewrite_expr(expr.operand, view))
        if isinstance(expr, MethodCall):
            path = self._rewrite_path(expr.path, view) if expr.path else None
            return MethodCall(path, expr.selector, expr.args, expr.op, expr.const)
        if isinstance(expr, AdtPredicate):
            return AdtPredicate(expr.name, self._rewrite_path(expr.path, view), expr.args)
        raise ViewError("cannot rewrite expression %r through a view" % (expr,))


def attach(db: "Database") -> ViewManager:
    manager = ViewManager(db)
    db.views = manager
    return manager
