"""Views: virtual classes, query rewriting, schema versioning."""

from .view import ViewDef, ViewManager, attach

__all__ = ["ViewDef", "ViewManager", "attach"]
