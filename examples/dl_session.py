"""A complete kimdb DL session: DDL + DML + DCL in one script.

The paper's Section 3.1 requires the three database sublanguages; this
example drives all of them through the statement interpreter, plus the
schema-browsing tools of Section 5.1.

Run:  python examples/dl_session.py
"""

from repro import Database
from repro.authz import attach as attach_authz
from repro.lang import Interpreter
from repro.semantics import attach_roles, attach_temporal
from repro.tools import IndexAdvisor, catalog_report, class_tree, describe_class
from repro.views import attach as attach_views


def main() -> None:
    db = Database()
    attach_views(db)
    authz = attach_authz(db)
    attach_temporal(db)
    interp = Interpreter(db)

    # -- DDL: the schema in statement form ---------------------------------
    interp.run_script(
        """
        CREATE CLASS Company (name String REQUIRED, location String);
        CREATE CLASS AutoCompany UNDER Company;
        CREATE CLASS Vehicle (
            weight Integer,
            color String DEFAULT 'white',
            manufacturer Company
        );
        CREATE CLASS Truck UNDER Vehicle (payload Integer);
        CREATE INDEX ON Vehicle(weight);
        CREATE INDEX ON Vehicle(manufacturer.location);
        """
    )

    # -- DML --------------------------------------------------------------
    gm = interp.execute("INSERT INTO Company SET name = 'GM', location = 'Detroit'").value
    interp.execute("INSERT INTO AutoCompany SET name = 'Toyota', location = 'Nagoya'")
    for weight in (3000, 8200, 9100):
        interp.execute(
            "INSERT INTO Vehicle SET weight = %d, manufacturer = @%d"
            % (weight, gm.oid.value)
        )
    result = interp.execute(
        "SELECT v FROM Vehicle v "
        "WHERE v.weight > 7500 AND v.manufacturer.location = 'Detroit'"
    )
    print("heavy Detroit vehicles:", result.detail)

    print(interp.execute(
        "SELECT v.color, COUNT(v), AVG(v.weight) FROM Vehicle v GROUP BY v.color"
    ).value)

    # -- DCL ----------------------------------------------------------------
    interp.execute("BEGIN")
    interp.execute("UPDATE Vehicle SET color = 'red' WHERE weight > 8000")
    interp.execute("ROLLBACK")
    print("reds after rollback:",
          interp.execute("SELECT COUNT(v) FROM Vehicle v WHERE v.color = 'red'").value)

    authz.add_role("clerk")
    interp.execute("GRANT read ON Vehicle TO clerk")
    with authz.as_subject("clerk"):
        print("clerk can read vehicles:",
              interp.execute("SELECT COUNT(v) FROM Vehicle v").value)

    # -- time travel -----------------------------------------------------------
    before = db.temporal.now
    interp.execute("UPDATE Vehicle SET color = 'blue' WHERE weight = 3000")
    light = interp.execute("SELECT v FROM Vehicle v WHERE v.weight = 3000").value[0]
    print("color now: %s, color before: %s" % (
        light["color"],
        db.temporal.value_as_of(light.oid, "color", before),
    ))

    # -- roles --------------------------------------------------------------------
    roles = attach_roles(db)
    from repro import AttributeDef

    roles.define_role("FleetVehicle", "Vehicle", [AttributeDef("fleet_no", "Integer")])
    roles.add_role(light.oid, "FleetVehicle", {"fleet_no": 7})
    print("fleet roles:", roles.roles_of(light.oid),
          "fleet_no:", roles.get(light.oid, "FleetVehicle", "fleet_no"))

    # -- the Section 5.1 tools -------------------------------------------------
    print("\n" + class_tree(db))
    print("\n" + describe_class(db, "Truck"))
    advisor = IndexAdvisor(db)
    for _ in range(3):
        advisor.observe("SELECT v FROM Vehicle v WHERE v.color = 'blue'")
    print("\n" + advisor.report(min_hits=2))
    print("\n" + catalog_report(db))


if __name__ == "__main__":
    main()
