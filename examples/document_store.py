"""Multimedia compound documents with views, authorization and evolution.

The paper's multimedia motivation [WOEL87]: compound documents holding
long unstructured data, protected by content-based authorization through
views, evolving their schema without rewriting stored instances.

Run:  python examples/document_store.py
"""

from repro import AttributeDef, Database
from repro.authz import attach as attach_authz
from repro.bench.workloads import define_document_schema, populate_documents
from repro.evolution import SchemaEvolution
from repro.views import attach as attach_views


def main() -> None:
    db = Database()
    attach_views(db)
    authz = attach_authz(db)
    define_document_schema(db)
    documents = populate_documents(db, n_documents=25, elements_per_doc=2, seed=5)
    # A few podcasts: the only documents with audio elements.
    for episode in range(3):
        clip = db.new(
            "MediaElement",
            {"kind": "audio", "content": b"\x01" * 64, "caption": "episode %d" % episode},
        )
        documents.append(
            db.new(
                "Document",
                {"title": "podcast-%d" % episode, "author": "author-9",
                 "elements": [clip.oid]},
            ).oid
        )
    print("documents:", len(documents))

    # Mark a few documents as drafts via a new attribute — schema
    # evolution without touching stored records (lazy coercion).
    evolution = SchemaEvolution(db)
    evolution.add_attribute(
        "Document", AttributeDef("status", "String", default="published")
    )
    for oid in documents[:5]:
        db.update(oid, {"status": "draft"})
    sample = db.get(documents[6])
    print("untouched record reads its default:", sample["status"])

    # -- views: the published subset, with a friendlier attribute name ----
    db.views.define_view(
        "PublishedDocument",
        "SELECT d FROM Document d WHERE d.status = 'published'",
        rename={"writer": "author"},
        doc="Content-based protection: only published documents.",
    )
    published = db.select("SELECT p FROM PublishedDocument p WHERE p.writer = 'author-1'")
    print("published docs by author-1:", len(published))

    # -- content-based authorization through the view -----------------------
    authz.add_role("reader")
    authz.grant("reader", "read", "PublishedDocument")
    with authz.as_subject("reader"):
        visible = db.select("SELECT p FROM PublishedDocument p")
        print("reader sees %d published documents" % len(visible))
        try:
            db.select("SELECT d FROM Document d")
        except Exception as exc:
            print("direct class access denied:", type(exc).__name__)

    # -- long unstructured data round-trips intact ---------------------------
    doc = db.get(documents[0])
    elements = doc.fetch_all("elements")
    payload = elements[0]["content"]
    print("\nfirst element: %s, %d bytes of %s data"
          % (elements[0]["caption"], len(payload), elements[0]["kind"]))

    # -- queries over the aggregation hierarchy -------------------------------
    audio_docs = db.select(
        "SELECT d FROM Document d WHERE d.elements.kind = 'audio'"
    )
    print("documents containing an audio element:", len(audio_docs))

    # An index on the nested attribute makes that query an index probe.
    db.create_nested_index("Document", ["elements", "kind"])
    print("plan:", db.plan(
        "SELECT d FROM Document d WHERE d.elements.kind = 'audio'"
    ).access.description)


if __name__ == "__main__":
    main()
