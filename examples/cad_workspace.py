"""CAx scenario: composite assemblies, versions, long transactions.

The workload the paper's introduction motivates: a design team working
on a recursive assembly, with

* composite objects (exclusive, dependent parts) and clustering,
* memory-resident traversal through a swizzling workspace,
* versions with promote/derive and change notification,
* a long-duration checkout/checkin session with conflict detection.

Run:  python examples/cad_workspace.py
"""

from repro import AttributeDef, Database
from repro.composite import attach as attach_composites
from repro.storage.clustering import CompositeClustering
from repro.versions import attach as attach_versions
from repro.versions import attach_notifications
from repro.workspace import ObjectWorkspace


def build_schema(db: Database) -> None:
    db.define_class(
        "Assembly",
        attributes=[
            AttributeDef("name", "String", required=True),
            AttributeDef("mass_g", "Integer", default=0),
            AttributeDef(
                "parts",
                "Assembly",
                multi=True,
                composite=True,
                exclusive=True,
                dependent=True,
            ),
        ],
        versionable=True,
    )


def build_gearbox(db: Database):
    def assembly(name, mass, parts=()):
        return db.new(
            "Assembly",
            {"name": name, "mass_g": mass, "parts": [p.oid for p in parts]},
        )

    gears = [assembly("gear-%d" % i, 120) for i in range(4)]
    shafts = [assembly("shaft-%d" % i, 300) for i in range(2)]
    gear_train = assembly("gear-train", 0, gears)
    housing = assembly("housing", 2500)
    return assembly("gearbox", 0, [gear_train, housing] + shafts)


def main() -> None:
    db = Database(clustering=CompositeClustering())
    attach_composites(db)
    attach_notifications(db)
    attach_versions(db)
    build_schema(db)

    gearbox = build_gearbox(db)
    print("gearbox parts (transitive):", len(db.composites.parts_of(gearbox.oid)))

    # -- swizzled traversal: total mass via direct pointers ---------------
    workspace = ObjectWorkspace(db, policy="lazy")

    def total_mass(memory_object):
        return memory_object["mass_g"] + sum(
            total_mass(part) for part in memory_object.refs("parts")
        )

    root = workspace.load(gearbox.oid)
    print("total mass: %d g (faults: %d)" % (total_mass(root), workspace.stats.faults))
    # Second pass is pure pointer chasing.
    workspace.stats.faults = 0
    total_mass(root)
    print("second pass faults:", workspace.stats.faults)

    # -- versions: derive a lightweight variant -----------------------------
    versioned = db.versions.create_versioned(
        "Assembly", {"name": "gearbox-design", "mass_g": 4000, "parts": []}
    )
    events = []
    db.notifications.subscribe(versioned, lambda *args: events.append(args))
    db.versions.promote(versioned)  # transient -> working (frozen)
    variant = db.versions.derive(versioned, {"mass_g": 3200})
    print("\nversion history:", db.versions.history(variant))
    print("derivation notifications:", [e[0] for e in events])
    print("default version binds to:", db.versions.resolve_generic(
        db.versions.generic_of(variant)))

    # -- long transaction: two designers, one conflict ----------------------
    alice = db.workspace("alice")
    bob = db.workspace("bob")
    target = db.composites.parts_of(gearbox.oid)[0]
    alice.checkout([target])
    bob.checkout([target])
    alice.update(target, {"mass_g": 111})
    print("\nalice checkin:", alice.checkin())
    bob.update(target, {"mass_g": 222})
    report = bob.checkin()
    print("bob checkin (conflict expected):", report)
    if not report.ok:
        print("  conflicting object:", report.conflicts[0].oid)
        print("  shared value now:", db.get(target)["mass_g"])

    # -- composite delete propagation ---------------------------------------
    before = db.count("Assembly")
    db.delete(gearbox.oid)
    print("\nassemblies before/after deleting the gearbox: %d -> %d"
          % (before, db.count("Assembly")))


if __name__ == "__main__":
    main()
