"""VLSI layout: abstract data types, spatial access methods, rules.

The Section 5.5 workload — rectangles from VLSI layouts as a user-
defined type, with the ``overlaps`` predicate integrated into the query
optimizer through a grid access method, plus a design-rule checker
expressed as deductive rules with contradiction detection.

Run:  python examples/vlsi_layout.py
"""

import random

from repro import AttributeDef, Database
from repro.adt import (
    attach as attach_adt,
    make_rect,
    register_rectangle_type,
    register_spatial_index,
)
from repro.rules import RuleEngine, TruthMaintenance, rule


def main() -> None:
    db = Database()
    registry = attach_adt(db)
    register_rectangle_type(registry)

    db.define_class(
        "LayoutCell",
        attributes=[
            AttributeDef("name", "String", required=True),
            AttributeDef("layer", "Integer"),
            AttributeDef("shape", "Rectangle"),
            AttributeDef("power", "Boolean", default=False),
        ],
    )
    grid = register_spatial_index(registry, "LayoutCell", "shape", cell_size=20)

    rng = random.Random(1990)
    for position in range(2000):
        x, y = rng.randrange(1000), rng.randrange(1000)
        db.new(
            "LayoutCell",
            {
                "name": "cell-%d" % position,
                "layer": position % 3,
                "shape": make_rect(x, y, x + rng.randrange(2, 15), y + rng.randrange(2, 15)),
                "power": position % 17 == 0,
            },
        )
    # Plant a known design-rule violation inside the query window: a
    # power rail overlapping a signal cell on the same layer.
    db.new(
        "LayoutCell",
        {"name": "vdd-rail", "layer": 1, "shape": make_rect(120, 120, 150, 126),
         "power": True},
    )
    db.new(
        "LayoutCell",
        {"name": "sig-bus", "layer": 1, "shape": make_rect(140, 118, 170, 130),
         "power": False},
    )
    print("layout cells:", len(grid))

    # -- spatial query through the optimizer --------------------------------
    window_query = (
        "SELECT c FROM LayoutCell c "
        "WHERE overlaps(c.shape, [100, 100, 180, 180]) AND c.layer = 1"
    )
    plan = db.plan(window_query)
    print("\nplan for the window query:")
    print(plan.explain())
    hits = db.select(window_query)
    print("layer-1 cells in the window:", len(hits))

    # -- design-rule check via deductive rules -------------------------------
    # Rule: a power cell overlapping a signal cell on the same layer is a
    # violation.  Facts are projected from stored objects.
    engine = RuleEngine(db)
    engine.map_class("cell", "LayoutCell", ["name", "layer", "power"])
    # Overlap facts come from the spatial index (pairwise within windows).
    reported = set()
    for handle in hits[:50]:
        shape = handle["shape"]
        for other_oid in grid.candidates(*shape):
            if other_oid == handle.oid:
                continue
            pair = tuple(sorted((handle.oid.value, other_oid.value)))
            if pair not in reported and db.adt.call("overlaps", db.get(other_oid)["shape"], *shape):
                reported.add(pair)
                engine.assert_fact("touches", handle.oid, other_oid)
    engine.add_rule(
        rule(
            "violation",
            ["?a", "?b"],
            ("touches", ["?a", "?b"]),
            ("cell", ["?a", "?an", "?layer", True]),
            ("cell", ["?b", "?bn", "?layer", False]),
            name="power-signal-overlap",
        )
    )
    violations = engine.query("violation", None, None)
    print("\npower/signal overlap violations:", len(violations))

    # -- truth maintenance: explain one violation ----------------------------
    if violations:
        tms = TruthMaintenance(engine, strategy="report")
        a, b = violations[0]
        for rule_name, support in tms.why("violation", a, b):
            print("because rule %r fired on:" % rule_name)
            for fact in support:
                print("   ", fact)


if __name__ == "__main__":
    main()
