"""Section 5.2's migration scenario, end to end.

"Suppose that an Employee database is managed by a relational database
system, a Product database is managed by a hierarchical database system,
and a Company database is managed by an object-oriented database system."

One federation presents all three under the common object-oriented data
model; OSQL shows the same SQL text running against a relational table
today and an object class tomorrow.

Run:  python examples/multidatabase_migration.py
"""

from repro import AttributeDef, Database
from repro.multidb import (
    Federation,
    HierarchicalAdapter,
    HierarchicalDatabase,
    ObjectAdapter,
    RelationalAdapter,
    run_osql,
    translate_sql,
)
from repro.relational import RelationalEngine


def main() -> None:
    # -- the legacy relational Employee database --------------------------
    relational = RelationalEngine()
    relational.create_table(
        "Employee",
        [("emp_id", "int"), ("name", "str"), ("company", "str")],
        primary_key="emp_id",
    )
    for emp_id, name, company in [
        (1, "alice", "GM"), (2, "bob", "GM"), (3, "carol", "Toyota"),
    ]:
        relational.insert("Employee", {"emp_id": emp_id, "name": name, "company": company})

    # -- the legacy hierarchical Product database --------------------------
    hierarchical = HierarchicalDatabase("products")
    hierarchical.define_segment("ProductLine", ["line"])
    hierarchical.define_segment("Product", ["sku", "price"], parent="ProductLine")
    trucks = hierarchical.insert("ProductLine", {"line": "trucks"})
    sedans = hierarchical.insert("ProductLine", {"line": "sedans"})
    hierarchical.insert("Product", {"sku": "T-100", "price": 45000}, parent_id=trucks)
    hierarchical.insert("Product", {"sku": "T-250", "price": 61000}, parent_id=trucks)
    hierarchical.insert("Product", {"sku": "S-1", "price": 28000}, parent_id=sedans)

    # -- the new object-oriented Company database ---------------------------
    oodb = Database()
    oodb.define_class(
        "Company",
        attributes=[
            AttributeDef("name", "String", required=True),
            AttributeDef("location", "String"),
        ],
    )
    oodb.new("Company", {"name": "GM", "location": "Detroit"})
    oodb.new("Company", {"name": "Toyota", "location": "Nagoya"})

    # -- one common model over all three ------------------------------------
    federation = Federation()
    federation.register("relational", RelationalAdapter(relational))
    federation.register("hierarchical", HierarchicalAdapter(hierarchical))
    federation.register("objects", ObjectAdapter(oodb, ["Company"]))
    print("virtual classes:", ", ".join(federation.class_names()))

    print("\nGM employees (relational source):")
    for row in federation.query("SELECT e FROM Employee e WHERE e.company = 'GM'"):
        print("  ", row["name"])

    print("\nTruck products over $50k (hierarchical source, parent path):")
    for row in federation.query(
        "SELECT p FROM Product p WHERE p.parent_id.line = 'trucks' AND p.price > 50000"
    ):
        print("  ", row["sku"], row["price"])

    print("\nDetroit companies (object source):")
    for row in federation.query("SELECT c FROM Company c WHERE c.location = 'Detroit'"):
        print("  ", row["name"])

    # -- OSQL: the SQL-compatible migration path ----------------------------
    sql = "SELECT name FROM Company WHERE location = 'Detroit'"
    translated = translate_sql(sql)
    print("\nOSQL translation:")
    print("  SQL:", sql)
    print("  OQL:", translated.oql)
    print("  against the OODB:", run_osql(oodb, sql))
    print("  against the federation:", federation.query(translated.oql))


if __name__ == "__main__":
    main()
