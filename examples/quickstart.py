"""Quickstart: the Figure 1 schema and the paper's example query.

Run:  python examples/quickstart.py
"""

from repro import AttributeDef, Database, MethodDef


def main() -> None:
    # An ephemeral database; pass a path for a durable one.
    db = Database()

    # -- define the schema (class hierarchy + aggregation hierarchy) ----
    db.define_class(
        "Company",
        attributes=[
            AttributeDef("name", "String", required=True),
            AttributeDef("location", "String"),
        ],
    )
    db.define_class(
        "Vehicle",
        attributes=[
            AttributeDef("weight", "Integer"),
            AttributeDef("color", "String", default="white"),
            AttributeDef("manufacturer", "Company"),
        ],
        methods=[
            MethodDef(
                "description",
                lambda receiver: "%s vehicle, %d lbs"
                % (receiver["color"], receiver["weight"]),
            )
        ],
    )
    db.define_class("Truck", superclasses=("Vehicle",),
                    attributes=[AttributeDef("payload", "Integer")])

    # -- create objects (references are OIDs) ----------------------------
    gm = db.new("Company", {"name": "GM", "location": "Detroit"})
    toyota = db.new("Company", {"name": "Toyota", "location": "Nagoya"})
    db.new("Vehicle", {"weight": 3000, "manufacturer": toyota.oid})
    db.new("Vehicle", {"weight": 8200, "color": "red", "manufacturer": gm.oid})
    db.new("Truck", {"weight": 9100, "payload": 4000, "manufacturer": gm.oid})

    # -- message passing with late binding --------------------------------
    for handle in db.instances("Vehicle"):
        print("%-7s %s" % (handle.class_name, handle.send("description")))

    # -- the paper's example query (nested predicate + hierarchy scope) ---
    heavy_detroit = db.select(
        "SELECT v FROM Vehicle v "
        "WHERE v.weight > 7500 AND v.manufacturer.location = 'Detroit'"
    )
    print("\nVehicles over 7500 lbs made in Detroit:")
    for handle in heavy_detroit:
        maker = handle.fetch("manufacturer")
        print("  %r: %d lbs, made by %s" % (handle.oid, handle["weight"], maker["name"]))

    # -- add an index and show the optimizer picking it -------------------
    db.create_hierarchy_index("Vehicle", "weight")
    plan = db.plan("SELECT v FROM Vehicle v WHERE v.weight > 7500")
    print("\nPlan with a class-hierarchy index:")
    print(plan.explain())

    # -- transactions ------------------------------------------------------
    with db.transaction():
        db.new("Vehicle", {"weight": 100, "manufacturer": toyota.oid})
    try:
        with db.transaction():
            doomed = db.new("Vehicle", {"weight": 1, "manufacturer": gm.oid})
            raise RuntimeError("changed my mind")
    except RuntimeError:
        pass
    print("\nRolled-back vehicle exists?", db.exists(doomed.oid))
    print("Total vehicles:", db.count("Vehicle"))


if __name__ == "__main__":
    main()
